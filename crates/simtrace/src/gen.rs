//! Composable synthetic reference-pattern generators.
//!
//! Each generator implements [`AccessPattern`], producing an endless stream
//! of data references with a particular locality signature. Patterns are
//! lifted into full instruction traces (interleaving non-memory
//! instructions and synthesizing a program counter stream) by
//! [`PatternTrace`].
//!
//! All generators are deterministic given their seed, so every experiment
//! in the benchmark harness is exactly reproducible.

use crate::addr::Addr;
use crate::instr::{Instr, MemOp, MemRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A source of data memory references.
///
/// Implementors are infinite: `next_ref` must always produce a reference.
/// Finiteness is imposed at the trace level with [`Iterator::take`].
pub trait AccessPattern {
    /// Produces the next data reference.
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef;
}

/// Boxed patterns forward, so pattern trees built at runtime (the
/// [`crate::workload`] spec compiler) compose exactly like concrete
/// ones — the box adds no RNG draws, keeping streams bit-identical.
impl AccessPattern for Box<dyn AccessPattern + Send> {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        self.as_mut().next_ref(rng)
    }
}

/// Sequentially sweeps one or more arrays with a fixed element stride,
/// optionally writing every `store_period`-th element.
///
/// This is the locality signature of vectorizable scientific code
/// (the paper's nasa7/swm256 class): near-perfect spatial locality, very
/// little temporal reuse, and misses that arrive at regular instruction
/// distances — which is exactly what makes the BNL features stall.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StridedSweep {
    /// Base address of the swept region.
    pub base: u64,
    /// Region length in bytes; the sweep wraps at `base + region_bytes`.
    pub region_bytes: u64,
    /// Byte stride between consecutive elements.
    pub stride: u64,
    /// Operand size in bytes.
    pub elem_size: u8,
    /// Every `store_period`-th access is a store (0 = never store).
    pub store_period: u32,
    cursor: u64,
    count: u32,
}

impl StridedSweep {
    /// Creates a sweep over `region_bytes` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `region_bytes` is zero.
    pub fn new(
        base: u64,
        region_bytes: u64,
        stride: u64,
        elem_size: u8,
        store_period: u32,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(region_bytes > 0, "region must be non-empty");
        StridedSweep {
            base,
            region_bytes,
            stride,
            elem_size,
            store_period,
            cursor: 0,
            count: 0,
        }
    }
}

impl AccessPattern for StridedSweep {
    fn next_ref(&mut self, _rng: &mut SmallRng) -> MemRef {
        let addr = Addr::new(self.base + self.cursor);
        self.cursor = (self.cursor + self.stride) % self.region_bytes;
        self.count = self.count.wrapping_add(1);
        let op = if self.store_period > 0 && self.count.is_multiple_of(self.store_period) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        MemRef {
            op,
            addr,
            size: self.elem_size,
        }
    }
}

/// Follows a fixed random permutation through a region — a linked-list /
/// pointer-chasing signature with essentially no spatial locality.
///
/// Stands in for irregular integer code; its misses are far apart in line
/// space, so partially-stalling caches recover almost the entire fill
/// latency on it.
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    /// Node index permutation: `next[i]` is the node visited after node `i`.
    next: Vec<u32>,
    node_bytes: u64,
    current: u32,
    store_fraction: f64,
}

impl PointerChase {
    /// Builds a chase over `nodes` nodes of `node_bytes` bytes each,
    /// visiting them in a seeded random cyclic order.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(base: u64, nodes: u32, node_bytes: u64, store_fraction: f64, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sattolo's algorithm: a single cycle through all nodes.
        let mut perm: Vec<u32> = (0..nodes).collect();
        for i in (1..nodes as usize).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let mut next = vec![0u32; nodes as usize];
        for w in 0..nodes as usize {
            next[perm[w] as usize] = perm[(w + 1) % nodes as usize];
        }
        PointerChase {
            base,
            next,
            node_bytes,
            current: 0,
            store_fraction,
        }
    }
}

impl AccessPattern for PointerChase {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        let addr = Addr::new(self.base + self.current as u64 * self.node_bytes);
        self.current = self.next[self.current as usize];
        let op = if rng.gen_bool(self.store_fraction) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        MemRef { op, addr, size: 4 }
    }
}

/// Uniform random references within a working set, with a configurable
/// store fraction — the classic "working set" temporal-locality model.
///
/// With a working set smaller than the cache this produces a very high hit
/// ratio; larger working sets dial the hit ratio down smoothly, which is
/// how the experiments position workloads at a chosen base hit ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkingSet {
    /// Base address of the working set.
    pub base: u64,
    /// Size of the working set in bytes.
    pub bytes: u64,
    /// Probability that a reference is a store.
    pub store_fraction: f64,
    /// Operand size in bytes.
    pub elem_size: u8,
}

impl WorkingSet {
    /// Creates a uniform working-set pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or `store_fraction` is outside `[0, 1]`.
    pub fn new(base: u64, bytes: u64, store_fraction: f64, elem_size: u8) -> Self {
        assert!(bytes > 0, "working set must be non-empty");
        assert!(
            (0.0..=1.0).contains(&store_fraction),
            "store fraction must be in [0, 1]"
        );
        WorkingSet {
            base,
            bytes,
            store_fraction,
            elem_size,
        }
    }
}

impl AccessPattern for WorkingSet {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        let elem = self.elem_size.max(1) as u64;
        let slots = (self.bytes / elem).max(1);
        let addr = Addr::new(self.base + rng.gen_range(0..slots) * elem);
        let op = if rng.gen_bool(self.store_fraction) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        MemRef {
            op,
            addr,
            size: self.elem_size,
        }
    }
}

/// Zipf-distributed references over a region: slot `i` is referenced
/// with probability ∝ `1/(i+1)^s`.
///
/// Real programs' reuse follows heavy-tailed laws, which makes the miss
/// ratio fall smoothly (roughly as a power law) with cache size — the
/// curve shape behind the paper's Example 1 (91 % at 8 K → 95.5 % at
/// 32 K). Uniform working sets cannot produce that shape; this generator
/// can.
#[derive(Debug, Clone)]
pub struct ZipfWorkingSet {
    base: u64,
    elem_size: u8,
    store_fraction: f64,
    /// Cumulative probability per slot, for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl ZipfWorkingSet {
    /// Creates a Zipf pattern over `slots` elements of `elem_size` bytes
    /// with exponent `s` (typical programs: 0.6–1.3).
    ///
    /// Slot `i` lives at `base + i·elem_size`: popular data is laid out
    /// contiguously (allocation order), so rank popularity also produces
    /// the spatial clustering real heaps show.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero, `s` is not finite and positive, or
    /// `store_fraction` is outside `[0, 1]`.
    pub fn new(base: u64, slots: u32, elem_size: u8, s: f64, store_fraction: f64) -> Self {
        assert!(slots > 0, "need at least one slot");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        assert!(
            (0.0..=1.0).contains(&store_fraction),
            "store fraction must be in [0, 1]"
        );
        let mut cdf = Vec::with_capacity(slots as usize);
        let mut total = 0.0;
        for i in 0..slots {
            total += 1.0 / f64::from(i + 1).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfWorkingSet {
            base,
            elem_size,
            store_fraction,
            cdf,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> u32 {
        self.cdf.len() as u32
    }
}

impl AccessPattern for ZipfWorkingSet {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        let u: f64 = rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        let addr = Addr::new(self.base + rank as u64 * u64::from(self.elem_size.max(1)));
        let op = if rng.gen_bool(self.store_fraction) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        MemRef {
            op,
            addr,
            size: self.elem_size,
        }
    }
}

/// A two-level working set: a small hot region receiving most references
/// and a large cold region receiving the rest.
///
/// This produces the LRU-friendly skewed reuse of typical compiled code and
/// lets experiments target a hit ratio by sizing the cold region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotCold {
    /// The frequently-referenced region.
    pub hot: WorkingSet,
    /// The rarely-referenced region.
    pub cold: WorkingSet,
    /// Probability a reference goes to the hot region.
    pub hot_fraction: f64,
}

impl HotCold {
    /// Creates a hot/cold pattern.
    ///
    /// # Panics
    ///
    /// Panics if `hot_fraction` is outside `[0, 1]`.
    pub fn new(hot: WorkingSet, cold: WorkingSet, hot_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must be in [0, 1]"
        );
        HotCold {
            hot,
            cold,
            hot_fraction,
        }
    }
}

impl AccessPattern for HotCold {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        if rng.gen_bool(self.hot_fraction) {
            self.hot.next_ref(rng)
        } else {
            self.cold.next_ref(rng)
        }
    }
}

/// Repeated sweeps over a set of arrays, one array after another — a loop
/// nest signature with both spatial locality (within an array) and temporal
/// locality (arrays revisited every outer iteration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopNest {
    arrays: Vec<StridedSweep>,
    /// References issued from the current array before moving on.
    pub burst: u32,
    current: usize,
    issued: u32,
}

impl LoopNest {
    /// Creates a loop nest cycling through `arrays`, issuing `burst`
    /// references from each before moving to the next.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty or `burst` is zero.
    pub fn new(arrays: Vec<StridedSweep>, burst: u32) -> Self {
        assert!(!arrays.is_empty(), "loop nest needs at least one array");
        assert!(burst > 0, "burst must be positive");
        LoopNest {
            arrays,
            burst,
            current: 0,
            issued: 0,
        }
    }
}

impl AccessPattern for LoopNest {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        let r = self.arrays[self.current].next_ref(rng);
        self.issued += 1;
        if self.issued >= self.burst {
            self.issued = 0;
            self.current = (self.current + 1) % self.arrays.len();
        }
        r
    }
}

/// Parameters shaping how a data-reference pattern is lifted into a full
/// instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceShape {
    /// Fraction of instructions that perform a data reference.
    ///
    /// The paper's SPEC92 mixes are around 0.25–0.40.
    pub mem_fraction: f64,
    /// Probability that an instruction is a taken branch to a random
    /// location within the code region (drives the instruction cache).
    pub branch_fraction: f64,
    /// Size of the synthetic code region in bytes.
    pub code_bytes: u64,
}

impl Default for TraceShape {
    fn default() -> Self {
        TraceShape {
            mem_fraction: 0.3,
            branch_fraction: 0.05,
            code_bytes: 64 * 1024,
        }
    }
}

impl TraceShape {
    /// Validates the shape parameters.
    ///
    /// # Errors
    ///
    /// Returns a message when a fraction is outside `[0, 1]` or the code
    /// region is empty.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.mem_fraction) {
            return Err(format!("mem_fraction {} outside [0, 1]", self.mem_fraction));
        }
        if !(0.0..=1.0).contains(&self.branch_fraction) {
            return Err(format!(
                "branch_fraction {} outside [0, 1]",
                self.branch_fraction
            ));
        }
        if self.code_bytes < 4 {
            return Err("code region must hold at least one instruction".to_string());
        }
        Ok(())
    }
}

/// Lifts an [`AccessPattern`] into an infinite instruction trace.
///
/// # Example
///
/// ```
/// use simtrace::gen::{PatternTrace, TraceShape, WorkingSet};
///
/// let ws = WorkingSet::new(0, 4096, 0.3, 4);
/// let trace: Vec<_> = PatternTrace::new(ws, TraceShape::default(), 7).take(100).collect();
/// assert_eq!(trace.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct PatternTrace<P> {
    pattern: P,
    shape: TraceShape,
    rng: SmallRng,
    pc: u64,
}

impl<P: AccessPattern> PatternTrace<P> {
    /// Creates a trace from `pattern` with the given shape and seed.
    ///
    /// # Panics
    ///
    /// Panics if `shape` fails validation; use [`TraceShape::validate`] to
    /// check fallibly.
    pub fn new(pattern: P, shape: TraceShape, seed: u64) -> Self {
        shape.validate().expect("invalid trace shape");
        PatternTrace {
            pattern,
            shape,
            rng: SmallRng::seed_from_u64(seed),
            pc: 0,
        }
    }
}

impl<P: AccessPattern> Iterator for PatternTrace<P> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let pc = Addr::new(self.pc);
        // Advance the synthetic program counter.
        if self.rng.gen_bool(self.shape.branch_fraction) {
            let slots = self.shape.code_bytes / 4;
            self.pc = self.rng.gen_range(0..slots) * 4;
        } else {
            self.pc = (self.pc + 4) % self.shape.code_bytes;
        }
        let mem = if self.rng.gen_bool(self.shape.mem_fraction) {
            Some(self.pattern.next_ref(&mut self.rng))
        } else {
            None
        };
        Some(Instr { pc, mem })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn strided_sweep_is_strided_and_wraps() {
        let mut s = StridedSweep::new(0x1000, 64, 16, 4, 0);
        let mut r = rng();
        let a: Vec<u64> = (0..6).map(|_| s.next_ref(&mut r).addr.raw()).collect();
        assert_eq!(a, vec![0x1000, 0x1010, 0x1020, 0x1030, 0x1000, 0x1010]);
    }

    #[test]
    fn strided_sweep_store_period() {
        let mut s = StridedSweep::new(0, 1024, 4, 4, 4);
        let mut r = rng();
        let ops: Vec<bool> = (0..8).map(|_| s.next_ref(&mut r).op.is_store()).collect();
        assert_eq!(
            ops,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn strided_sweep_rejects_zero_stride() {
        StridedSweep::new(0, 64, 0, 4, 0);
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_cycle() {
        let mut p = PointerChase::new(0, 64, 16, 0.0, 9);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(
                seen.insert(p.next_ref(&mut r).addr.raw()),
                "node revisited within a cycle"
            );
        }
        assert_eq!(seen.len(), 64);
        // Next 64 revisit the same set.
        for _ in 0..64 {
            assert!(seen.contains(&p.next_ref(&mut r).addr.raw()));
        }
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let mut a = PointerChase::new(0, 32, 8, 0.0, 5);
        let mut b = PointerChase::new(0, 32, 8, 0.0, 5);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..100 {
            assert_eq!(a.next_ref(&mut r1), b.next_ref(&mut r2));
        }
    }

    #[test]
    fn working_set_stays_in_bounds() {
        let mut w = WorkingSet::new(0x8000, 256, 0.5, 8);
        let mut r = rng();
        for _ in 0..1000 {
            let m = w.next_ref(&mut r);
            assert!(m.addr.raw() >= 0x8000 && m.addr.raw() < 0x8000 + 256);
            assert_eq!(m.addr.raw() % 8, 0);
        }
    }

    #[test]
    fn working_set_store_fraction_zero_and_one() {
        let mut r = rng();
        let mut never = WorkingSet::new(0, 64, 0.0, 4);
        let mut always = WorkingSet::new(0, 64, 1.0, 4);
        for _ in 0..50 {
            assert!(never.next_ref(&mut r).op.is_load());
            assert!(always.next_ref(&mut r).op.is_store());
        }
    }

    #[test]
    fn hot_cold_splits_regions() {
        let hot = WorkingSet::new(0, 64, 0.0, 4);
        let cold = WorkingSet::new(0x1_0000, 64, 0.0, 4);
        let mut hc = HotCold::new(hot, cold, 0.9);
        let mut r = rng();
        let hits = (0..10_000)
            .filter(|_| hc.next_ref(&mut r).addr.raw() < 0x1_0000)
            .count();
        assert!(
            (8_500..=9_500).contains(&hits),
            "hot fraction far from 0.9: {hits}"
        );
    }

    #[test]
    fn loop_nest_cycles_arrays() {
        let a = StridedSweep::new(0, 1024, 4, 4, 0);
        let b = StridedSweep::new(0x10_000, 1024, 4, 4, 0);
        let mut nest = LoopNest::new(vec![a, b], 3);
        let mut r = rng();
        let regions: Vec<bool> = (0..9)
            .map(|_| nest.next_ref(&mut r).addr.raw() >= 0x10_000)
            .collect();
        assert_eq!(
            regions,
            vec![false, false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut z = ZipfWorkingSet::new(0, 1024, 8, 1.0, 0.0);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(z.next_ref(&mut r).addr.raw()).or_insert(0u32) += 1;
        }
        // Rank 0 (at the region base) must be the most frequent slot.
        assert_eq!(
            counts.iter().max_by_key(|(_, &c)| c).map(|(&a, _)| a),
            Some(0),
            "rank 0 lives at the base address"
        );
        let hottest = *counts.values().max().unwrap();
        assert!(hottest > 2_000, "rank-0 share too small: {hottest}");
        assert!(
            counts.len() > 100,
            "tail should still be touched: {}",
            counts.len()
        );
    }

    #[test]
    fn zipf_stays_in_region_and_aligned() {
        let mut z = ZipfWorkingSet::new(0x1000, 256, 8, 0.8, 0.5);
        let mut r = rng();
        for _ in 0..5_000 {
            let m = z.next_ref(&mut r);
            assert!(m.addr.raw() >= 0x1000 && m.addr.raw() < 0x1000 + 256 * 8);
            assert_eq!(m.addr.raw() % 8, 0);
        }
    }

    #[test]
    fn zipf_is_deterministic_given_the_rng() {
        let mut a = ZipfWorkingSet::new(0, 64, 4, 1.0, 0.0);
        let mut b = ZipfWorkingSet::new(0, 64, 4, 1.0, 0.0);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..200 {
            assert_eq!(a.next_ref(&mut r1), b.next_ref(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn zipf_rejects_bad_exponent() {
        ZipfWorkingSet::new(0, 64, 4, 0.0, 0.0);
    }

    #[test]
    fn zipf_higher_exponent_concentrates_references() {
        let footprint = |s_exp: f64| {
            let mut z = ZipfWorkingSet::new(0, 32 * 1024, 8, s_exp, 0.0);
            let mut r = rng();
            let mut lines = std::collections::HashSet::new();
            for _ in 0..20_000 {
                lines.insert(z.next_ref(&mut r).addr.raw() / 32);
            }
            lines.len()
        };
        assert!(
            footprint(1.3) < footprint(0.7),
            "heavier tail → wider footprint"
        );
    }

    #[test]
    fn pattern_trace_respects_mem_fraction() {
        let ws = WorkingSet::new(0, 4096, 0.3, 4);
        let shape = TraceShape {
            mem_fraction: 0.25,
            ..TraceShape::default()
        };
        let n = 40_000;
        let mems = PatternTrace::new(ws, shape, 3)
            .take(n)
            .filter(|i: &Instr| i.mem.is_some())
            .count();
        let frac = mems as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "mem fraction {frac} far from 0.25"
        );
    }

    #[test]
    fn pattern_trace_pcs_stay_in_code_region() {
        let ws = WorkingSet::new(0, 4096, 0.3, 4);
        let shape = TraceShape {
            code_bytes: 1024,
            ..TraceShape::default()
        };
        for i in PatternTrace::new(ws, shape, 3).take(5_000) {
            assert!(i.pc.raw() < 1024);
            assert_eq!(i.pc.raw() % 4, 0);
        }
    }

    #[test]
    fn trace_shape_validation() {
        assert!(TraceShape::default().validate().is_ok());
        assert!(TraceShape {
            mem_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TraceShape {
            branch_fraction: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TraceShape {
            code_bytes: 2,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
