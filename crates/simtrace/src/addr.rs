//! Byte addresses and line addresses.
//!
//! The simulators work with byte-granular virtual addresses; caches work
//! with line addresses. Keeping the two as distinct newtypes rules out the
//! classic off-by-a-shift bug where a byte address is compared with a line
//! tag.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte-granular virtual address.
///
/// # Example
///
/// ```
/// use simtrace::addr::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(64).base(64), Addr::new(0x1200));
/// assert_eq!(a.offset_in_line(64), 0x34);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address of the cache line containing this byte.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two (debug builds).
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 / line_bytes)
    }

    /// Returns the byte offset of this address within its cache line.
    pub fn offset_in_line(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 % line_bytes
    }

    /// Returns the index of the `chunk_bytes`-wide bus chunk within the line
    /// that contains this address.
    ///
    /// Line fills deliver the line in `line_bytes / chunk_bytes` chunks of
    /// bus width `chunk_bytes`; partial-line stalling features (BNL2/BNL3)
    /// need to know which chunk an access touches.
    pub fn chunk_in_line(self, line_bytes: u64, chunk_bytes: u64) -> u64 {
        self.offset_in_line(line_bytes) / chunk_bytes
    }

    /// Returns this address advanced by `delta` bytes, wrapping on overflow.
    pub fn wrapping_add(self, delta: u64) -> Self {
        Addr(self.0.wrapping_add(delta))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The index of a cache line in memory (byte address divided by line size).
///
/// A `LineAddr` is only meaningful together with the line size it was
/// derived from; the simulators carry a single global line size so this is
/// not encoded in the type.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line index.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset_round_trip() {
        let a = Addr::new(0xABCD);
        let line = a.line(32);
        assert_eq!(line.base(32).raw() + a.offset_in_line(32), a.raw());
    }

    #[test]
    fn chunk_in_line_identifies_bus_chunk() {
        // 32-byte line, 4-byte bus: 8 chunks.
        let base = Addr::new(0x100);
        for i in 0..8 {
            assert_eq!(base.wrapping_add(i * 4).chunk_in_line(32, 4), i);
            assert_eq!(base.wrapping_add(i * 4 + 3).chunk_in_line(32, 4), i);
        }
    }

    #[test]
    fn same_line_iff_same_line_addr() {
        let a = Addr::new(0x200);
        let b = Addr::new(0x21F);
        let c = Addr::new(0x220);
        assert_eq!(a.line(32), b.line(32));
        assert_ne!(a.line(32), c.line(32));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(0x1f).to_string(), "0x1f");
        assert_eq!(LineAddr::new(0x2).to_string(), "line 0x2");
    }

    #[test]
    fn conversions() {
        let a: Addr = 0x42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0x42);
    }
}
