//! Dinero `.din` trace import/export.
//!
//! The `din` format is the lingua franca of 1990s cache studies (and of
//! Smith's trace-driven work the paper builds on): one record per line,
//! `<label> <hex address>`, with label 0 = data read, 1 = data write,
//! 2 = instruction fetch. Importing it lets *real* traces drive this
//! reproduction instead of the synthetic proxies.
//!
//! Mapping to [`Instr`]: an instruction-fetch record starts a new
//! instruction at that PC; data records attach to the most recent fetch
//! (several data records after one fetch become several instructions at
//! the same PC, preserving reference order and counts).

use crate::instr::{Instr, MemRef};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from `.din` parsing.
#[derive(Debug)]
pub enum DinError {
    /// The line did not have `<label> <address>` shape.
    Malformed {
        /// 1-based line number.
        line: u64,
        /// The offending text.
        text: String,
    },
    /// The label was not 0, 1 or 2.
    BadLabel {
        /// 1-based line number.
        line: u64,
        /// The offending label.
        label: String,
    },
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for DinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DinError::Malformed { line, text } => {
                write!(f, "line {line}: malformed record {text:?}")
            }
            DinError::BadLabel { line, label } => {
                write!(
                    f,
                    "line {line}: unknown label {label:?} (expected 0, 1 or 2)"
                )
            }
            DinError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DinError {}

impl From<io::Error> for DinError {
    fn from(e: io::Error) -> Self {
        DinError::Io(e)
    }
}

/// Streaming `.din` parser.
#[derive(Debug)]
pub struct DinReader<R> {
    lines: io::Lines<R>,
    line_no: u64,
    last_pc: u64,
}

impl<R: BufRead> DinReader<R> {
    /// Creates a parser over a buffered reader.
    pub fn new(reader: R) -> Self {
        DinReader {
            lines: reader.lines(),
            line_no: 0,
            last_pc: 0,
        }
    }
}

impl<R: BufRead> Iterator for DinReader<R> {
    type Item = Result<Instr, DinError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(DinError::Io(e))),
            };
            self.line_no += 1;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue; // comments/blank lines are common in practice
            }
            let mut parts = text.split_whitespace();
            let (Some(label), Some(addr_text)) = (parts.next(), parts.next()) else {
                return Some(Err(DinError::Malformed {
                    line: self.line_no,
                    text: text.to_string(),
                }));
            };
            let Ok(addr) = u64::from_str_radix(addr_text.trim_start_matches("0x"), 16) else {
                return Some(Err(DinError::Malformed {
                    line: self.line_no,
                    text: text.to_string(),
                }));
            };
            return Some(match label {
                "0" => Ok(Instr::mem(self.last_pc, MemRef::load(addr, 4))),
                "1" => Ok(Instr::mem(self.last_pc, MemRef::store(addr, 4))),
                "2" => {
                    self.last_pc = addr;
                    Ok(Instr::plain(addr))
                }
                other => Err(DinError::BadLabel {
                    line: self.line_no,
                    label: other.to_string(),
                }),
            });
        }
    }
}

/// Writes a trace as `.din` records (fetch + optional data per
/// instruction).
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn write_din<W: Write>(mut w: W, trace: impl IntoIterator<Item = Instr>) -> io::Result<()> {
    for instr in trace {
        writeln!(w, "2 {:x}", instr.pc.raw())?;
        if let Some(m) = instr.mem {
            let label = if m.op.is_store() { 1 } else { 0 };
            writeln!(w, "{label} {:x}", m.addr.raw())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemOp;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Vec<Instr>, DinError> {
        DinReader::new(BufReader::new(text.as_bytes())).collect()
    }

    #[test]
    fn parses_the_three_labels() {
        let trace = parse("2 400\n0 1000\n1 1004\n2 404\n").unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], Instr::plain(0x400u64));
        assert_eq!(trace[1].pc.raw(), 0x400);
        assert!(matches!(trace[1].mem, Some(m) if m.op == MemOp::Load && m.addr.raw() == 0x1000));
        assert!(matches!(trace[2].mem, Some(m) if m.op == MemOp::Store && m.addr.raw() == 0x1004));
        assert_eq!(trace[3], Instr::plain(0x404u64));
    }

    #[test]
    fn skips_blanks_and_comments() {
        let trace = parse("# dinero trace\n\n2 10\n  \n0 20\n").unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn accepts_0x_prefix_and_mixed_case() {
        let trace = parse("2 0xDEADbeef\n").unwrap();
        assert_eq!(trace[0].pc.raw(), 0xDEAD_BEEF);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let err = parse("2 400\njusttoken\n").unwrap_err();
        assert!(matches!(err, DinError::Malformed { line: 2, .. }), "{err}");
        let err = parse("not a record\n").unwrap_err();
        assert!(
            matches!(err, DinError::BadLabel { line: 1, .. }),
            "hex 'a' parses, label doesn't: {err}"
        );
        let err = parse("7 400\n").unwrap_err();
        assert!(matches!(err, DinError::BadLabel { line: 1, .. }), "{err}");
        let err = parse("2 zzz\n").unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn data_before_any_fetch_uses_pc_zero() {
        let trace = parse("0 1234\n").unwrap();
        assert_eq!(trace[0].pc.raw(), 0);
    }

    #[test]
    fn write_then_read_round_trips_structure() {
        let original = [
            Instr::plain(0x100u64),
            Instr::mem(0x104u64, MemRef::load(0x2000u64, 4)),
            Instr::mem(0x108u64, MemRef::store(0x2004u64, 4)),
        ];
        let mut bytes = Vec::new();
        write_din(&mut bytes, original.iter().copied()).unwrap();
        let reread: Vec<Instr> = DinReader::new(BufReader::new(&bytes[..]))
            .collect::<Result<_, _>>()
            .unwrap();
        // din splits fetch and data into separate records, so counts grow,
        // but the reference stream is preserved in order.
        let refs: Vec<_> = reread.iter().filter_map(|i| i.mem).collect();
        let orig_refs: Vec<_> = original.iter().filter_map(|i| i.mem).collect();
        assert_eq!(refs, orig_refs);
        let pcs: Vec<u64> = reread.iter().map(|i| i.pc.raw()).collect();
        assert!(pcs.contains(&0x104) && pcs.contains(&0x108));
    }

    #[test]
    fn parsed_stream_has_usable_reference_mix() {
        let text = "2 400\n0 1000\n0 1004\n1 2000\n";
        let trace = parse(text).unwrap();
        assert_eq!(trace.iter().filter(|i| i.is_load()).count(), 2);
        assert_eq!(trace.iter().filter(|i| i.is_store()).count(), 1);
        write_din(Vec::new(), trace).unwrap();
    }
}
