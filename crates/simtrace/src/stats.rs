//! Streaming trace statistics.

use crate::instr::{Instr, MemOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate counts over a trace.
///
/// Corresponds to the application-characterisation side of the paper's
/// Table 1: `E` (instructions), the load/store population that `R`, `W`
/// and `Λ` are computed from, and byte volumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Instructions observed (`E`).
    pub instructions: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Bytes stored.
    pub store_bytes: u64,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes a trace and accumulates its statistics.
    pub fn from_trace(trace: impl IntoIterator<Item = Instr>) -> Self {
        let mut s = Self::new();
        for i in trace {
            s.record(&i);
        }
        s
    }

    /// Records one instruction.
    pub fn record(&mut self, instr: &Instr) {
        self.instructions += 1;
        if let Some(m) = instr.mem {
            match m.op {
                MemOp::Load => {
                    self.loads += 1;
                    self.load_bytes += u64::from(m.size);
                }
                MemOp::Store => {
                    self.stores += 1;
                    self.store_bytes += u64::from(m.size);
                }
            }
        }
    }

    /// Total data references (loads + stores).
    pub fn data_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of instructions that reference data memory.
    ///
    /// Returns 0 for an empty trace.
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.data_refs() as f64 / self.instructions as f64
        }
    }

    /// Fraction of data references that are stores.
    ///
    /// Returns 0 when there are no data references.
    pub fn store_fraction(&self) -> f64 {
        let refs = self.data_refs();
        if refs == 0 {
            0.0
        } else {
            self.stores as f64 / refs as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, {} loads, {} stores ({:.1}% mem, {:.1}% stores)",
            self.instructions,
            self.loads,
            self.stores,
            100.0 * self.mem_fraction(),
            100.0 * self.store_fraction()
        )
    }
}

impl Extend<Instr> for TraceStats {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        for i in iter {
            self.record(&i);
        }
    }
}

impl FromIterator<Instr> for TraceStats {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Self::from_trace(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemRef;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::plain(0u64),
            Instr::mem(4u64, MemRef::load(0x100u64, 4)),
            Instr::mem(8u64, MemRef::store(0x104u64, 8)),
            Instr::plain(12u64),
        ]
    }

    #[test]
    fn counts_are_exact() {
        let s = TraceStats::from_trace(sample());
        assert_eq!(s.instructions, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.load_bytes, 4);
        assert_eq!(s.store_bytes, 8);
        assert_eq!(s.data_refs(), 2);
    }

    #[test]
    fn fractions() {
        let s = TraceStats::from_trace(sample());
        assert!((s.mem_fraction() - 0.5).abs() < 1e-12);
        assert!((s.store_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.mem_fraction(), 0.0);
        assert_eq!(s.store_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TraceStats::from_trace(sample());
        let b = TraceStats::from_trace(sample());
        a.merge(&b);
        assert_eq!(a.instructions, 8);
        assert_eq!(a.loads, 2);
    }

    #[test]
    fn collect_and_extend() {
        let s: TraceStats = sample().into_iter().collect();
        assert_eq!(s.instructions, 4);
        let mut t = TraceStats::new();
        t.extend(sample());
        assert_eq!(t, s);
    }

    #[test]
    fn display_mentions_counts() {
        let s = TraceStats::from_trace(sample());
        let text = s.to_string();
        assert!(text.contains("4 instr") && text.contains("1 loads"));
    }
}
