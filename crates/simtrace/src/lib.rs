//! Memory-reference trace model and synthetic workload generators.
//!
//! The ISCA-1994 tradeoff methodology of Chen & Somani extracts three things
//! from an address trace: the cache hit ratio, the dirty-line flush ratio
//! `α`, and the *stalling factor* `φ` (a function of the instruction
//! distance between a cache miss and the next access that touches the
//! in-flight line). All three are statistical properties of the reference
//! stream, so the paper's SPEC92 traces — which are not redistributable —
//! can be substituted by synthetic streams with controlled spatial and
//! temporal locality. This crate provides:
//!
//! * a compact instruction/reference representation ([`Instr`], [`MemRef`]),
//! * composable, deterministic generators ([`gen`]),
//! * six SPEC92 *proxy* workloads ([`spec92`]) mirroring the programs the
//!   paper simulated (nasa7, swm256, wave5, ear, doduc, hydro2d),
//! * declarative workload specs ([`workload`]): JSON-described generator
//!   trees with a stable content hash, compiling to the same streams,
//! * streaming statistics ([`stats`]) and a compact binary trace encoding
//!   ([`encode`]) for recording and replaying traces.
//!
//! # Example
//!
//! ```
//! use simtrace::spec92::{spec92_trace, Spec92Program};
//!
//! let trace = spec92_trace(Spec92Program::Nasa7, 0xC0FFEE).take(10_000);
//! let stats = simtrace::stats::TraceStats::from_trace(trace);
//! assert_eq!(stats.instructions, 10_000);
//! assert!(stats.data_refs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod chunk;
pub mod din;
pub mod encode;
pub mod gen;
pub mod instr;
pub mod mix;
pub mod phases;
pub mod reuse;
pub mod reusehist;
pub mod spec92;
pub mod stats;
pub mod workload;

pub use addr::{Addr, LineAddr};
pub use chunk::ChunkedTrace;
pub use instr::{Instr, MemOp, MemRef, INSTR_BYTES};
pub use mix::{MixtureBuilder, MixtureTrace};
pub use phases::{Phase, PhasedPattern};
pub use reuse::ReuseProfile;
pub use reusehist::{ReuseDistCounter, ReuseHistograms};
pub use spec92::{spec92_trace, Spec92Program};
pub use stats::TraceStats;
pub use workload::{WorkloadId, WorkloadSpec};

/// A trace is any iterator over instructions.
///
/// The blanket implementation means every generator in this crate — and any
/// plain `Vec<Instr>` iterator — is a `Trace` automatically.
pub trait Trace: Iterator<Item = Instr> {}

impl<T: Iterator<Item = Instr>> Trace for T {}
