//! SPEC92 proxy workloads.
//!
//! Figure 1 of the paper averages stalling factors over six SPEC92
//! programs (nasa7, swm256, wave5, ear, doduc, hydro2d), 50 M instructions
//! each, through an 8 KB two-way write-allocate data cache. The original
//! traces are not redistributable, so each program is replaced by a
//! synthetic *proxy* whose reference stream has the qualitative locality
//! signature the program is known for. The tradeoff methodology consumes
//! only aggregate statistics of the stream (hit ratio, flush ratio, miss
//! distances), which is what these proxies control.
//!
//! The proxies are tuned so that, at the paper's 8 KB/32 B/2-way cache,
//! hit ratios land in the realistic 88–99 % band with per-program spread
//! in flush ratio `α` and in miss spacing (which drives the BNL stalling
//! factors):
//!
//! * vectorizable strided codes (nasa7, swm256, hydro2d) miss regularly
//!   once per line and write back heavily,
//! * a mixed particle/field code (wave5) combines Zipf-reuse gathers
//!   with regular field sweeps,
//! * a DSP-style loop nest (ear) has near-perfect temporal reuse,
//! * an irregular Monte-Carlo code (doduc) has Zipf-distributed table
//!   lookups with few stores.

use crate::gen::{LoopNest, PatternTrace, StridedSweep, TraceShape, WorkingSet, ZipfWorkingSet};
use crate::mix::{MixtureBuilder, MixtureTrace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six SPEC92 programs the paper simulates (as proxies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Spec92Program {
    /// NASA Ames kernels: seven vectorizable numeric kernels.
    Nasa7,
    /// Shallow water model: stencil sweeps over large grids, store-heavy.
    Swm256,
    /// Plasma simulation: particle push (irregular) plus field solve
    /// (regular).
    Wave5,
    /// Human ear model: FFT-like loop nests with strong temporal reuse.
    Ear,
    /// Monte-Carlo reactor physics: irregular control and data flow.
    Doduc,
    /// Galactic jet hydrodynamics: 2-D stencil sweeps.
    Hydro2d,
}

impl Spec92Program {
    /// All six programs, in the order the paper lists them.
    pub const ALL: [Spec92Program; 6] = [
        Spec92Program::Nasa7,
        Spec92Program::Swm256,
        Spec92Program::Wave5,
        Spec92Program::Ear,
        Spec92Program::Doduc,
        Spec92Program::Hydro2d,
    ];

    /// The program's lowercase SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Spec92Program::Nasa7 => "nasa7",
            Spec92Program::Swm256 => "swm256",
            Spec92Program::Wave5 => "wave5",
            Spec92Program::Ear => "ear",
            Spec92Program::Doduc => "doduc",
            Spec92Program::Hydro2d => "hydro2d",
        }
    }
}

impl fmt::Display for Spec92Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the proxy trace for `program`, deterministic in `seed`.
///
/// The returned iterator is infinite; bound it with [`Iterator::take`].
/// Mixing the program discriminant into the seed keeps the six programs
/// decorrelated even when driven with the same experiment seed.
///
/// # Example
///
/// ```
/// use simtrace::spec92::{spec92_trace, Spec92Program};
/// let n = spec92_trace(Spec92Program::Ear, 1).take(1000).count();
/// assert_eq!(n, 1000);
/// ```
pub fn spec92_trace(program: Spec92Program, seed: u64) -> PatternTrace<MixtureTrace> {
    let seed = seed ^ (program as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mib = 1u64 << 20;
    match program {
        Spec92Program::Nasa7 => MixtureBuilder::new()
            // Long unit-stride double-precision sweeps (MXM, FFT working
            // arrays)...
            .component(0.16, StridedSweep::new(0x10_0000, 2 * mib, 8, 8, 5))
            // ...a blocked kernel reusing a small sub-matrix...
            .component(
                0.42,
                LoopNest::new(
                    vec![
                        StridedSweep::new(0x60_0000, 3 * 1024, 8, 8, 0),
                        StridedSweep::new(0x60_0C00, 3 * 1024, 8, 8, 3),
                    ],
                    384,
                ),
            )
            // ...index/coefficient tables with heavy-tailed reuse...
            .component(0.18, ZipfWorkingSet::new(0x68_0000, 16 * 1024, 8, 1.2, 0.1))
            // ...and scalar locals that always hit.
            .component(0.24, WorkingSet::new(0x7F_0000, 2048, 0.4, 8))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.34,
                    branch_fraction: 0.02,
                    code_bytes: 32 * 1024,
                },
                seed,
            ),
        Spec92Program::Swm256 => MixtureBuilder::new()
            // Fourteen-array stencil: concurrent unit-stride streams,
            // every third access a store (grid update).
            .component(0.22, StridedSweep::new(0x100_0000, 4 * mib, 8, 8, 3))
            .component(0.14, StridedSweep::new(0x200_0000, 4 * mib, 8, 8, 3))
            // Row-to-row reuse: the previous row (12 K) is revisited — it
            // fits a 32 K cache but thrashes an 8 K one.
            .component(0.18, StridedSweep::new(0x100_0000, 12 * 1024, 8, 8, 0))
            // Grid-edge tables and loop-invariant scalars.
            .component(0.46, WorkingSet::new(0x7F_0000, 3 * 1024, 0.5, 8))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.40,
                    branch_fraction: 0.01,
                    code_bytes: 16 * 1024,
                },
                seed,
            ),
        Spec92Program::Wave5 => MixtureBuilder::new()
            // Particle push: heavy-tailed gather/scatter over the
            // particle array.
            .component(
                0.32,
                ZipfWorkingSet::new(0x300_0000, 96 * 1024, 8, 1.3, 0.35),
            )
            // Field solve: regular sweeps over the grid.
            .component(0.24, StridedSweep::new(0x400_0000, mib, 8, 8, 4))
            // Hot auxiliary tables.
            .component(0.44, WorkingSet::new(0x7E_0000, 4 * 1024, 0.2, 8))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.32,
                    branch_fraction: 0.04,
                    code_bytes: 96 * 1024,
                },
                seed,
            ),
        Spec92Program::Ear => MixtureBuilder::new()
            // Cochlea filter cascade: tight loop nest over medium arrays
            // revisited every time step — strong temporal reuse.
            .component(
                0.78,
                LoopNest::new(
                    vec![
                        StridedSweep::new(0x50_0000, 2 * 1024, 4, 4, 4),
                        StridedSweep::new(0x50_0800, 2 * 1024, 4, 4, 0),
                        StridedSweep::new(0x50_1000, 2 * 1024, 4, 4, 2),
                    ],
                    256,
                ),
            )
            // Occasional state spill to a larger history buffer.
            .component(0.06, StridedSweep::new(0x58_0000, mib / 2, 8, 8, 3))
            .component(0.16, WorkingSet::new(0x7D_0000, 2048, 0.3, 4))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.28,
                    branch_fraction: 0.03,
                    code_bytes: 24 * 1024,
                },
                seed,
            ),
        Spec92Program::Doduc => MixtureBuilder::new()
            // Monte-Carlo: cross-section tables with Zipf popularity —
            // mostly reads, so α stays low.
            .component(
                0.48,
                ZipfWorkingSet::new(0x500_0000, 64 * 1024, 8, 1.2, 0.08),
            )
            // Hot physics constants and the particle stack.
            .component(0.46, WorkingSet::new(0x40_0000, 3 * 1024, 0.15, 8))
            // Cold event records appended rarely.
            .component(0.06, StridedSweep::new(0x600_0000, 4 * mib, 8, 8, 2))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.25,
                    branch_fraction: 0.08,
                    code_bytes: 192 * 1024,
                },
                seed,
            ),
        Spec92Program::Hydro2d => MixtureBuilder::new()
            // 2-D stencils: two alternating row sweeps with store-back.
            .component(0.20, StridedSweep::new(0x800_0000, 2 * mib, 8, 8, 2))
            .component(0.14, StridedSweep::new(0x900_0000, 2 * mib, 8, 8, 2))
            // Neighbour-row reuse (10 K: fits 32 K, not 8 K cleanly).
            .component(0.16, StridedSweep::new(0x800_0000, 10 * 1024, 8, 8, 0))
            // Hot column scratch and equation-of-state tables.
            .component(0.50, WorkingSet::new(0x7C_0000, 2048, 0.5, 8))
            .into_trace(
                TraceShape {
                    mem_fraction: 0.38,
                    branch_fraction: 0.015,
                    code_bytes: 20 * 1024,
                },
                seed,
            ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn all_programs_produce_instructions() {
        for p in Spec92Program::ALL {
            let stats = TraceStats::from_trace(spec92_trace(p, 7).take(20_000));
            assert_eq!(stats.instructions, 20_000, "{p}");
            assert!(stats.loads > 0, "{p} produced no loads");
            assert!(stats.stores > 0, "{p} produced no stores");
        }
    }

    #[test]
    fn traces_are_deterministic_in_seed() {
        for p in Spec92Program::ALL {
            let a: Vec<_> = spec92_trace(p, 99).take(500).collect();
            let b: Vec<_> = spec92_trace(p, 99).take(500).collect();
            assert_eq!(a, b, "{p} not reproducible");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = spec92_trace(Spec92Program::Nasa7, 1).take(500).collect();
        let b: Vec<_> = spec92_trace(Spec92Program::Nasa7, 2).take(500).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn programs_are_decorrelated_under_same_seed() {
        let a: Vec<_> = spec92_trace(Spec92Program::Nasa7, 1).take(500).collect();
        let b: Vec<_> = spec92_trace(Spec92Program::Swm256, 1).take(500).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mem_fractions_differ_across_programs() {
        let frac = |p| {
            let s = TraceStats::from_trace(spec92_trace(p, 7).take(50_000));
            s.data_refs() as f64 / s.instructions as f64
        };
        let swm = frac(Spec92Program::Swm256);
        let doduc = frac(Spec92Program::Doduc);
        assert!(
            swm > doduc + 0.05,
            "swm256 ({swm}) should reference memory more than doduc ({doduc})"
        );
    }

    #[test]
    fn names_round_trip_display() {
        for p in Spec92Program::ALL {
            assert_eq!(p.to_string(), p.name());
        }
    }
}
