//! Weighted mixtures of access patterns.
//!
//! Real programs interleave phases with different locality; a weighted
//! mixture of the primitive generators in [`crate::gen`] approximates this
//! at the reference level. Mixtures are themselves [`AccessPattern`]s, so
//! they nest.

use crate::gen::{AccessPattern, PatternTrace, TraceShape};
use crate::instr::MemRef;
use rand::rngs::SmallRng;
use rand::Rng;

/// A weighted mixture of boxed access patterns.
///
/// Each reference is drawn from component `i` with probability
/// `weight_i / Σ weights`.
pub struct MixtureTrace {
    components: Vec<(f64, Box<dyn AccessPattern + Send>)>,
    total_weight: f64,
}

impl std::fmt::Debug for MixtureTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixtureTrace")
            .field("components", &self.components.len())
            .field("total_weight", &self.total_weight)
            .finish()
    }
}

impl AccessPattern for MixtureTrace {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        let mut pick = rng.gen_range(0.0..self.total_weight);
        for (w, p) in &mut self.components {
            if pick < *w {
                return p.next_ref(rng);
            }
            pick -= *w;
        }
        // Floating-point edge: fall through to the last component.
        self.components
            .last_mut()
            .expect("mixture has at least one component")
            .1
            .next_ref(rng)
    }
}

/// Builder for [`MixtureTrace`].
///
/// # Example
///
/// ```
/// use simtrace::gen::{StridedSweep, TraceShape, WorkingSet};
/// use simtrace::mix::MixtureBuilder;
///
/// let trace = MixtureBuilder::new()
///     .component(0.7, StridedSweep::new(0, 1 << 20, 8, 8, 4))
///     .component(0.3, WorkingSet::new(1 << 24, 8192, 0.3, 4))
///     .into_trace(TraceShape::default(), 11);
/// assert_eq!(trace.take(1000).count(), 1000);
/// ```
#[derive(Debug, Default)]
pub struct MixtureBuilder {
    components: Vec<(f64, Box<dyn AccessPattern + Send>)>,
}

impl std::fmt::Debug for Box<dyn AccessPattern + Send> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AccessPattern")
    }
}

impl MixtureBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn component(mut self, weight: f64, pattern: impl AccessPattern + Send + 'static) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.components.push((weight, Box::new(pattern)));
        self
    }

    /// Adds an already-boxed component with the given weight — the
    /// runtime-composition twin of [`MixtureBuilder::component`], used
    /// by the [`crate::workload`] spec compiler to avoid double boxing.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn boxed(mut self, weight: f64, pattern: Box<dyn AccessPattern + Send>) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.components.push((weight, pattern));
        self
    }

    /// Finishes the mixture.
    ///
    /// # Panics
    ///
    /// Panics if no component was added.
    pub fn build(self) -> MixtureTrace {
        assert!(
            !self.components.is_empty(),
            "mixture needs at least one component"
        );
        let total_weight = self.components.iter().map(|(w, _)| *w).sum();
        MixtureTrace {
            components: self.components,
            total_weight,
        }
    }

    /// Finishes the mixture and lifts it into an instruction trace.
    pub fn into_trace(self, shape: TraceShape, seed: u64) -> PatternTrace<MixtureTrace> {
        PatternTrace::new(self.build(), shape, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkingSet;
    use rand::SeedableRng;

    #[test]
    fn mixture_draws_from_all_components_by_weight() {
        let mut mix = MixtureBuilder::new()
            .component(0.8, WorkingSet::new(0, 64, 0.0, 4))
            .component(0.2, WorkingSet::new(0x1_0000, 64, 0.0, 4))
            .build();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let low = (0..n)
            .filter(|_| mix.next_ref(&mut rng).addr.raw() < 0x1_0000)
            .count();
        let frac = low as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "component weight off: {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_panics() {
        MixtureBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn non_positive_weight_panics() {
        MixtureBuilder::new().component(0.0, WorkingSet::new(0, 64, 0.0, 4));
    }

    #[test]
    fn single_component_mixture_is_that_component() {
        let mut mix = MixtureBuilder::new()
            .component(1.0, WorkingSet::new(0, 64, 0.0, 4))
            .build();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(mix.next_ref(&mut rng).addr.raw() < 64);
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let mix = MixtureBuilder::new()
            .component(1.0, WorkingSet::new(0, 64, 0.0, 4))
            .build();
        assert!(format!("{mix:?}").contains("MixtureTrace"));
    }
}
