//! Bounded-memory chunked trace generation.
//!
//! The paper's evaluation runs ~50 M instructions per program; at the
//! pinned 24 bytes/instruction (see [`crate::instr`]) a materialised
//! trace of that length costs 1.2 GB — and the methodology only ever
//! consumes *folds* of the stream (hit ratios, flush ratios, miss
//! timelines), never random access. [`ChunkedTrace`] turns any
//! deterministic generator into a sequence of bounded blocks so a
//! 50 M–1 B instruction trace is produced in `chunk_len`-sized pieces
//! with one reusable buffer, instead of one `Vec<Instr>`.
//!
//! # Determinism contract
//!
//! The proxy generators are stateful lazy streams seeded once, so a
//! chunk's content is a function of the *carried resume state* — the
//! generator after the previous chunk — not of the chunk index alone.
//! Two consequences, both asserted by `tests/chunk_properties.rs`:
//!
//! * **Bit-identity**: concatenating the chunks of
//!   [`spec92_chunks`](crate::chunk::spec92_chunks) reproduces the
//!   monolithic `spec92_trace(p, seed).take(n)` stream exactly, for any
//!   chunk size — and the chunk size may change between chunks.
//! * **Derivable resume points**: because the stream is prefix-stable,
//!   the state before chunk `i` (of fixed size `c`) is derivable from
//!   `(seed, chunk_index)` by fast-forwarding `i · c` instructions
//!   ([`ChunkedTrace::start_at`]); carrying the live iterator forward
//!   is the `O(1)` way to resume and produces the same bytes.
//!
//! Consumers fold chunks in order (`StackDistSweep::process_slice`,
//! `MissTimelineBuilder::process_slice`, or any slice loop); because
//! every consumer of one stream sees the identical ordered chunk
//! sequence, chunked and parallel folds are bit-identical to the
//! monolithic path (see `bench::stream`).

use crate::instr::Instr;
use crate::mix::MixtureTrace;
use crate::spec92::{spec92_trace, Spec92Program};

/// Default instructions per chunk: 64 Ki instructions ≈ 1.5 MB of
/// buffered trace — large enough to amortise per-chunk overhead, small
/// enough that a handful of in-flight chunks stay cache- and
/// RSS-friendly.
pub const DEFAULT_CHUNK_INSTRUCTIONS: usize = 64 * 1024;

/// Adapts a deterministic instruction stream into bounded chunks.
///
/// The wrapped iterator *is* the resume state: after `next_chunk_into`
/// returns, the `ChunkedTrace` is positioned exactly after the chunk it
/// produced, so continuing (with the same or a different chunk size)
/// extends the stream without gaps or repeats.
///
/// ```
/// use simtrace::chunk::ChunkedTrace;
/// use simtrace::spec92::{spec92_trace, Spec92Program};
///
/// let mono: Vec<_> = spec92_trace(Spec92Program::Ear, 7).take(10_000).collect();
/// let mut chunks = ChunkedTrace::new(spec92_trace(Spec92Program::Ear, 7).take(10_000), 4096);
/// let mut streamed = Vec::new();
/// let mut buf = Vec::new();
/// while chunks.next_chunk_into(&mut buf) {
///     streamed.extend_from_slice(&buf);
/// }
/// assert_eq!(streamed, mono);
/// assert_eq!(chunks.produced(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkedTrace<I> {
    source: I,
    chunk_len: usize,
    produced: u64,
}

impl<I: Iterator<Item = Instr>> ChunkedTrace<I> {
    /// Wraps `source`, emitting chunks of at most `chunk_len`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn new(source: I, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be at least 1");
        ChunkedTrace {
            source,
            chunk_len,
            produced: 0,
        }
    }

    /// Wraps `source` positioned `skip` instructions in: the resume
    /// state of chunk `skip / chunk_len` when `skip` is a multiple of
    /// the chunk size. Fast-forwarding costs `O(skip)` generation (the
    /// streams are sequential by construction); callers resuming a live
    /// pipeline should carry the `ChunkedTrace` itself instead.
    pub fn start_at(source: I, chunk_len: usize, skip: u64) -> Self {
        let mut chunked = Self::new(source, chunk_len);
        for _ in 0..skip {
            if chunked.source.next().is_none() {
                break;
            }
        }
        chunked
    }

    /// The configured chunk length.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Changes the chunk length for subsequent chunks. The produced
    /// stream is unaffected — only its partitioning changes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn set_chunk_len(&mut self, chunk_len: usize) {
        assert!(chunk_len > 0, "chunk length must be at least 1");
        self.chunk_len = chunk_len;
    }

    /// Instructions emitted across all chunks so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Fills `buf` with the next chunk (clearing it first) and returns
    /// `true`, or returns `false` when the stream is exhausted (leaving
    /// `buf` empty). The final chunk may be shorter than `chunk_len`.
    pub fn next_chunk_into(&mut self, buf: &mut Vec<Instr>) -> bool {
        buf.clear();
        buf.extend(self.source.by_ref().take(self.chunk_len));
        self.produced += buf.len() as u64;
        !buf.is_empty()
    }

    /// Folds every remaining chunk through `f`, reusing one buffer.
    pub fn for_each_chunk(mut self, mut f: impl FnMut(&[Instr])) {
        let mut buf = Vec::with_capacity(self.chunk_len);
        while self.next_chunk_into(&mut buf) {
            f(&buf);
        }
    }
}

/// The chunk source every streaming consumer of a SPEC92 proxy uses:
/// `len` instructions of `spec92_trace(program, seed)` in `chunk_len`
/// blocks, bit-identical to the materialised trace.
pub fn spec92_chunks(
    program: Spec92Program,
    seed: u64,
    len: usize,
    chunk_len: usize,
) -> ChunkedTrace<std::iter::Take<crate::gen::PatternTrace<MixtureTrace>>> {
    ChunkedTrace::new(spec92_trace(program, seed).take(len), chunk_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mono(n: usize) -> Vec<Instr> {
        spec92_trace(Spec92Program::Nasa7, 42).take(n).collect()
    }

    #[test]
    fn chunks_concatenate_to_the_monolithic_trace() {
        let want = mono(10_000);
        for chunk_len in [1, 7, 1024, 10_000, 65_536] {
            let mut got = Vec::new();
            spec92_chunks(Spec92Program::Nasa7, 42, 10_000, chunk_len)
                .for_each_chunk(|c| got.extend_from_slice(c));
            assert_eq!(got, want, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn produced_counts_every_instruction() {
        let mut chunks = spec92_chunks(Spec92Program::Ear, 1, 5_000, 999);
        let mut buf = Vec::new();
        let mut n = 0usize;
        while chunks.next_chunk_into(&mut buf) {
            assert!(buf.len() <= 999);
            n += buf.len();
        }
        assert_eq!(n, 5_000);
        assert_eq!(chunks.produced(), 5_000);
        assert!(!chunks.next_chunk_into(&mut buf), "stream stays exhausted");
    }

    #[test]
    fn start_at_matches_a_drained_prefix() {
        let want = mono(6_000);
        let mut resumed = ChunkedTrace::start_at(
            spec92_trace(Spec92Program::Nasa7, 42).take(6_000),
            512,
            2_048,
        );
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while resumed.next_chunk_into(&mut buf) {
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, want[2_048..]);
    }

    #[test]
    fn chunk_size_may_change_mid_stream() {
        let want = mono(4_000);
        let mut chunks = spec92_chunks(Spec92Program::Nasa7, 42, 4_000, 100);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        assert!(chunks.next_chunk_into(&mut buf));
        got.extend_from_slice(&buf);
        chunks.set_chunk_len(1_733);
        while chunks.next_chunk_into(&mut buf) {
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_len_is_rejected() {
        let _ = ChunkedTrace::new(std::iter::empty::<Instr>(), 0);
    }
}
