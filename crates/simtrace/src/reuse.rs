//! Reuse-distance analysis (Mattson's stack algorithm).
//!
//! The reuse distance of a reference is the number of *distinct* lines
//! touched since the previous touch of the same line. Its distribution
//! fully determines the hit ratio of every fully-associative LRU cache
//! at once (Mattson et al., 1970): a cache of `k` lines hits exactly the
//! references with distance `< k`. The experiments use this both as a
//! locality fingerprint of the proxies and as a cross-validation oracle
//! for the cache simulator.

use crate::instr::Instr;
use serde::{Deserialize, Serialize};

/// The reuse-distance profile of a reference stream, at line
/// granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseProfile {
    line_bytes: u64,
    /// `histogram[d]` counts references with reuse distance exactly `d`
    /// (capped at the last bucket).
    histogram: Vec<u64>,
    /// First-touch (cold) references.
    cold: u64,
    /// Total data references analysed.
    total: u64,
}

impl ReuseProfile {
    /// Computes the profile of a trace's data references.
    ///
    /// `max_distance` caps the histogram (distances beyond it land in
    /// the final bucket). Distances come from the Fenwick-tree Mattson
    /// counter ([`crate::reusehist::ReuseDistCounter`]), so the cost is
    /// `O(refs · log distinct-lines)` — paper-scale traces profile in
    /// seconds where the old exact-stack walk
    /// (`O(refs × distinct-lines)`) needed hours.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or `max_distance`
    /// is zero.
    pub fn from_trace(
        trace: impl IntoIterator<Item = Instr>,
        line_bytes: u64,
        max_distance: usize,
    ) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let mut counter = crate::reusehist::ReuseDistCounter::new(max_distance);
        for instr in trace {
            let Some(m) = instr.mem else { continue };
            counter.access(m.addr.line(line_bytes).raw());
        }
        ReuseProfile {
            line_bytes,
            histogram: counter.histogram().to_vec(),
            cold: counter.cold(),
            total: counter.total(),
        }
    }

    /// Assembles a profile from already-counted parts (the
    /// [`crate::reusehist::ReuseHistograms`] fold uses this to hand out
    /// per-granularity post-warm-up profiles).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, the histogram is
    /// empty, or the counts are inconsistent (histogram + cold ≠
    /// total).
    pub fn from_parts(line_bytes: u64, histogram: Vec<u64>, cold: u64, total: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(!histogram.is_empty(), "need at least one distance bucket");
        let counted: u64 = histogram.iter().sum();
        assert!(
            counted + cold == total,
            "histogram ({counted}) + cold ({cold}) must equal total ({total})"
        );
        ReuseProfile {
            line_bytes,
            histogram,
            cold,
            total,
        }
    }

    /// The line granularity the profile was computed at.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total references analysed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) references.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// The raw histogram (`[d] = refs at distance d`, last bucket open).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Mattson: the hit ratio of a fully-associative LRU cache holding
    /// `lines` lines — the fraction of references with distance
    /// `< lines` (cold misses never hit).
    pub fn lru_hit_ratio(&self, lines: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(lines).sum();
        hits as f64 / self.total as f64
    }

    /// Hit ratios for every fully-associative LRU capacity
    /// `1..=max_lines` in one prefix-sum scan — the bulk form of
    /// [`ReuseProfile::lru_hit_ratio`], `O(max_lines)` total instead of
    /// `O(max_lines²)` repeated summing.
    pub fn lru_hit_ratios(&self, max_lines: usize) -> Vec<f64> {
        let mut ratios = Vec::with_capacity(max_lines);
        if self.total == 0 {
            ratios.resize(max_lines, 0.0);
            return ratios;
        }
        let mut hits = 0u64;
        for k in 1..=max_lines {
            if let Some(&h) = self.histogram.get(k - 1) {
                hits += h;
            }
            ratios.push(hits as f64 / self.total as f64);
        }
        ratios
    }

    /// The smallest fully-associative LRU capacity (in lines) reaching
    /// `target` hit ratio, or `None` if even an infinite cache (bounded
    /// by compulsory misses) cannot. A single prefix-sum scan of the
    /// histogram.
    pub fn capacity_for(&self, target: f64) -> Option<usize> {
        if self.total == 0 {
            // No references: the hit ratio is 0 at every capacity.
            return (target <= 0.0).then_some(1);
        }
        let mut hits = 0u64;
        for (bucket, &h) in self.histogram.iter().enumerate() {
            hits += h;
            if hits as f64 / self.total as f64 >= target {
                return Some(bucket + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemRef;

    fn loads(addrs: &[u64]) -> Vec<Instr> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| Instr::mem((i as u64) * 4, MemRef::load(a, 4)))
            .collect()
    }

    #[test]
    fn distances_hand_checked() {
        // Lines: A B A C B A (32-byte lines).
        let trace = loads(&[0x00, 0x20, 0x00, 0x40, 0x20, 0x00]);
        let p = ReuseProfile::from_trace(trace, 32, 8);
        assert_eq!(p.cold(), 3);
        // A at distance 1 (B between), B at distance 2 (C, A), A at 2 (C? →
        // stack after C: [B, A, C]; B touch: distance 2; stack [A, C, B];
        // A: distance 2.
        assert_eq!(p.histogram()[1], 1);
        assert_eq!(p.histogram()[2], 2);
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn repeated_single_line_is_all_distance_zero() {
        let p = ReuseProfile::from_trace(loads(&[0x10; 100]), 32, 4);
        assert_eq!(p.cold(), 1);
        assert_eq!(p.histogram()[0], 99);
        assert!((p.lru_hit_ratio(1) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn mattson_inclusion_hit_ratio_is_monotone() {
        let addrs: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 2048).collect();
        let p = ReuseProfile::from_trace(loads(&addrs), 32, 128);
        let mut prev = 0.0;
        for k in 1..=128 {
            let hr = p.lru_hit_ratio(k);
            assert!(hr >= prev);
            prev = hr;
        }
    }

    #[test]
    fn capacity_for_inverts_hit_ratio() {
        let addrs: Vec<u64> = (0..400u64).map(|i| (i % 40) * 32).collect();
        let p = ReuseProfile::from_trace(loads(&addrs), 32, 64);
        // 40 resident lines: distance 39 for every wrap access.
        assert_eq!(p.capacity_for(0.8), Some(40));
        assert_eq!(
            p.capacity_for(0.999),
            None,
            "compulsory misses bound the ceiling"
        );
    }

    #[test]
    fn lru_hit_ratios_matches_the_scalar_accessor() {
        let addrs: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 2048).collect();
        let p = ReuseProfile::from_trace(loads(&addrs), 32, 128);
        let bulk = p.lru_hit_ratios(140);
        assert_eq!(bulk.len(), 140);
        for (k, &hr) in bulk.iter().enumerate() {
            assert_eq!(hr, p.lru_hit_ratio(k + 1), "k={}", k + 1);
        }
        assert!(ReuseProfile::from_trace(loads(&[]), 32, 4)
            .lru_hit_ratios(3)
            .iter()
            .all(|&hr| hr == 0.0));
    }

    #[test]
    fn from_parts_round_trips() {
        let addrs: Vec<u64> = (0..300u64).map(|i| (i % 17) * 64).collect();
        let p = ReuseProfile::from_trace(loads(&addrs), 64, 32);
        let rebuilt =
            ReuseProfile::from_parts(p.line_bytes(), p.histogram().to_vec(), p.cold(), p.total());
        assert_eq!(rebuilt, p);
    }

    #[test]
    #[should_panic(expected = "must equal total")]
    fn from_parts_rejects_inconsistent_counts() {
        ReuseProfile::from_parts(32, vec![1, 2], 0, 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        ReuseProfile::from_trace(loads(&[0]), 24, 4);
    }
}
