//! Declarative workload specs: first-class workload identity.
//!
//! The rest of the stack used to name workloads with the closed
//! [`Spec92Program`] enum. This module replaces that with a
//! [`WorkloadSpec`]: a declarative, composable generator tree over the
//! primitives in [`crate::gen`], [`crate::mix`] and [`crate::phases`],
//! parsed from and rendered to JSON via the dependency-free
//! `report::Json` codec (the workspace vendors no TOML parser, so JSON
//! is the one spec syntax; the schema is documented in `DESIGN.md`
//! §15). A spec:
//!
//! * **validates** fallibly ([`WorkloadSpec::from_json`] mirrors every
//!   constructor panic in [`crate::gen`], so a parsed spec never panics
//!   when compiled),
//! * **compiles** ([`WorkloadSpec::compile`]) to the same
//!   [`PatternTrace`] streaming path every generator uses — and through
//!   [`WorkloadSpec::chunks`] to the chunked pipeline, bit-identical
//!   for any chunk size,
//! * **canonicalises** ([`WorkloadSpec::canonical_json`]) to a stable
//!   rendering whose SHA-256 is the spec's content hash
//!   ([`WorkloadSpec::id`]) — the identity the `bench` trace store keys
//!   traces, timelines and histograms on.
//!
//! The six SPEC92 proxies are re-expressed as built-in named specs
//! ([`builtin_spec`]); their compiled streams are pinned bit-identical
//! to the legacy [`crate::spec92::spec92_trace`] constructors, so every
//! oracle test and committed artifact survives the re-keying unchanged.
//!
//! # Example
//!
//! ```
//! use simtrace::workload::WorkloadSpec;
//!
//! let spec = WorkloadSpec::from_json_str(
//!     r#"{"pattern":{"kind":"working_set","base":0,"bytes":4096,
//!         "store_fraction":0.3,"elem_size":4}}"#,
//! )
//! .unwrap();
//! assert_eq!(spec.compile(7).take(100).count(), 100);
//! // Same spec text, same identity — the content hash is stable.
//! assert_eq!(spec.id(), WorkloadSpec::from_json(&spec.canonical_json()).unwrap().id());
//! ```

use crate::chunk::ChunkedTrace;
use crate::gen::{
    AccessPattern, HotCold, LoopNest, PatternTrace, PointerChase, StridedSweep, TraceShape,
    WorkingSet, ZipfWorkingSet,
};
use crate::mix::MixtureBuilder;
use crate::phases::{Phase, PhasedPattern};
use crate::spec92::Spec92Program;
use report::{sha256_hex, Json};
use std::fmt;
use std::sync::OnceLock;

/// A compiled workload: the boxed-pattern instruction stream every spec
/// lowers to.
pub type CompiledTrace = PatternTrace<Box<dyn AccessPattern + Send>>;

/// Largest table a spec may ask a generator to materialise (Zipf CDF
/// slots, pointer-chase nodes): inline specs arrive over the query API,
/// so construction cost must stay bounded.
pub const MAX_TABLE_SLOTS: u32 = 1 << 24;

/// Largest integer the JSON codec represents exactly; plain numeric
/// spec fields must stay below it so parse → render round-trips are
/// lossless (64-bit seeds use hex strings instead).
const MAX_EXACT: u64 = 1 << 53;

/// The seed decorrelation constant the legacy SPEC92 constructors mix
/// the program discriminant with — reused verbatim by the built-in
/// specs so their streams stay bit-identical.
const SEED_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stable content identity of a workload spec: the SHA-256 of its
/// canonical JSON rendering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkloadId([u8; 32]);

impl WorkloadId {
    /// The full 64-hex-character digest.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// A 12-character prefix — the human-facing short form used in
    /// labels and resident-trace listings.
    pub fn short(&self) -> String {
        self.hex()[..12].to_string()
    }

    fn from_hex(hex: &str) -> WorkloadId {
        debug_assert_eq!(hex.len(), 64, "sha256 digests are 64 hex chars");
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).expect("sha256_hex emits hex");
        }
        WorkloadId(bytes)
    }
}

impl fmt::Debug for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkloadId({})", self.short())
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Parameters of one strided sweep, as declared in a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct StridedParams {
    /// Base address of the swept region.
    pub base: u64,
    /// Region length in bytes (the sweep wraps).
    pub region_bytes: u64,
    /// Byte stride between consecutive elements.
    pub stride: u64,
    /// Operand size in bytes.
    pub elem_size: u8,
    /// Every `store_period`-th access is a store (0 = never).
    pub store_period: u32,
}

/// Parameters of one uniform working set, as declared in a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkingSetParams {
    /// Base address of the working set.
    pub base: u64,
    /// Working-set size in bytes.
    pub bytes: u64,
    /// Probability that a reference is a store.
    pub store_fraction: f64,
    /// Operand size in bytes.
    pub elem_size: u8,
}

/// One phase of a phase-structured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label.
    pub name: String,
    /// Data references this phase runs before yielding to the next.
    pub refs: u64,
    /// The pattern the phase plays.
    pub pattern: PatternNode,
}

/// One node of the declarative generator tree.
///
/// Leaves wrap the primitive generators in [`crate::gen`]; `Mixture`
/// and `Phases` are the composition forms from [`crate::mix`] and
/// [`crate::phases`], and nest arbitrarily.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternNode {
    /// A fixed-stride sweep ([`StridedSweep`]).
    Strided(StridedParams),
    /// A seeded random-cycle pointer chase ([`PointerChase`]). The
    /// node's `seed` is XORed with the compile seed, so the permutation
    /// is decorrelated per run but deterministic per (spec, seed).
    Chase {
        /// Base address of the node region.
        base: u64,
        /// Number of chased nodes.
        nodes: u32,
        /// Bytes per node.
        node_bytes: u64,
        /// Probability that a visit is a store.
        store_fraction: f64,
        /// Permutation seed, mixed with the compile seed.
        seed: u64,
    },
    /// A uniform working set ([`WorkingSet`]).
    WorkingSet(WorkingSetParams),
    /// Zipf-distributed references ([`ZipfWorkingSet`]).
    Zipf {
        /// Base address of the region.
        base: u64,
        /// Number of Zipf-ranked slots.
        slots: u32,
        /// Operand size in bytes.
        elem_size: u8,
        /// Zipf exponent (typical programs: 0.6–1.3).
        s: f64,
        /// Probability that a reference is a store.
        store_fraction: f64,
    },
    /// A two-level hot/cold working set ([`HotCold`]).
    HotCold {
        /// The frequently-referenced region.
        hot: WorkingSetParams,
        /// The rarely-referenced region.
        cold: WorkingSetParams,
        /// Probability a reference goes to the hot region.
        hot_fraction: f64,
    },
    /// A loop nest cycling through arrays ([`LoopNest`]).
    LoopNest {
        /// The swept arrays, visited round-robin.
        arrays: Vec<StridedParams>,
        /// References per array before moving on.
        burst: u32,
    },
    /// A weighted mixture of child patterns ([`crate::mix`]).
    Mixture(Vec<(f64, PatternNode)>),
    /// Deterministic phase alternation ([`crate::phases`]).
    Phases(Vec<PhaseSpec>),
}

/// A declarative workload: shape, seed decorrelator, and pattern tree.
///
/// Two specs with the same [`canonical_json`](WorkloadSpec::canonical_json)
/// are the same workload — `name` is a label and does not enter the
/// content hash, so a builtin and an anonymous copy of it share one
/// trace-store identity.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Optional human-facing name (builtins: the SPEC92 program name).
    pub name: Option<String>,
    /// XORed into every compile seed, decorrelating specs driven with
    /// the same experiment seed (the role `spec92_trace`'s discriminant
    /// mix played).
    pub seed_mix: u64,
    /// How the reference pattern is lifted into an instruction stream.
    pub shape: TraceShape,
    /// The generator tree.
    pub root: PatternNode,
}

// ---------------------------------------------------------------------
// JSON codec helpers (strict: unknown keys rejected, like the query API)
// ---------------------------------------------------------------------

fn check_keys(v: &Json, allowed: &[&str], what: &str) -> Result<(), String> {
    if v.as_obj().is_none() {
        return Err(format!("{what} must be a JSON object"));
    }
    for key in v.keys() {
        if !allowed.contains(&key) {
            return Err(format!("{what}: unknown key {key:?}"));
        }
    }
    Ok(())
}

fn need<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing {key:?}"))
}

fn u64_field(v: &Json, key: &str, what: &str) -> Result<u64, String> {
    need(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: {key:?} must be a non-negative integer"))
}

fn u32_field(v: &Json, key: &str, what: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, key, what)?).map_err(|_| format!("{what}: {key:?} exceeds 32 bits"))
}

fn u8_field(v: &Json, key: &str, what: &str) -> Result<u8, String> {
    u8::try_from(u64_field(v, key, what)?).map_err(|_| format!("{what}: {key:?} exceeds 8 bits"))
}

fn f64_field(v: &Json, key: &str, what: &str) -> Result<f64, String> {
    let n = need(v, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: {key:?} must be a number"))?;
    if !n.is_finite() {
        return Err(format!("{what}: {key:?} must be finite"));
    }
    Ok(n)
}

/// 64-bit seeds exceed the codec's exact-integer range, so they are
/// accepted as plain integers *or* strings (`"0x…"` hex or decimal);
/// the canonical rendering is always the hex string.
fn seed_field(v: &Json, key: &str, what: &str) -> Result<u64, String> {
    let field = need(v, key, what)?;
    if let Some(n) = field.as_u64() {
        return Ok(n);
    }
    let text = field
        .as_str()
        .ok_or_else(|| format!("{what}: {key:?} must be an integer or a seed string"))?;
    let parsed = match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("{what}: {key:?} is not a 64-bit seed: {text:?}"))
}

fn seed_json(seed: u64) -> Json {
    Json::str(format!("{seed:#x}"))
}

fn exact_num(n: u64, key: &str, what: &str) -> Result<Json, String> {
    if n >= MAX_EXACT {
        return Err(format!("{what}: {key:?} exceeds the exact JSON range"));
    }
    Ok(Json::num(n as f64))
}

fn fraction(x: f64, key: &str, what: &str) -> Result<f64, String> {
    if !(0.0..=1.0).contains(&x) {
        return Err(format!("{what}: {key:?} must be in [0, 1], got {x}"));
    }
    Ok(x)
}

impl StridedParams {
    fn from_json(v: &Json, what: &str) -> Result<StridedParams, String> {
        check_keys(
            v,
            &[
                "kind",
                "base",
                "region_bytes",
                "stride",
                "elem_size",
                "store_period",
            ],
            what,
        )?;
        let p = StridedParams {
            base: u64_field(v, "base", what)?,
            region_bytes: u64_field(v, "region_bytes", what)?,
            stride: u64_field(v, "stride", what)?,
            elem_size: u8_field(v, "elem_size", what)?,
            store_period: u32_field(v, "store_period", what)?,
        };
        p.validate(what)?;
        Ok(p)
    }

    fn fields(&self, what: &str) -> Result<Vec<(&'static str, Json)>, String> {
        Ok(vec![
            ("base", exact_num(self.base, "base", what)?),
            (
                "region_bytes",
                exact_num(self.region_bytes, "region_bytes", what)?,
            ),
            ("stride", exact_num(self.stride, "stride", what)?),
            ("elem_size", Json::num(f64::from(self.elem_size))),
            ("store_period", Json::num(f64::from(self.store_period))),
        ])
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        if self.stride == 0 {
            return Err(format!("{what}: stride must be positive"));
        }
        if self.region_bytes == 0 {
            return Err(format!("{what}: region must be non-empty"));
        }
        if self.base >= MAX_EXACT || self.region_bytes >= MAX_EXACT || self.stride >= MAX_EXACT {
            return Err(format!("{what}: field exceeds the exact JSON range"));
        }
        Ok(())
    }

    fn build(&self) -> StridedSweep {
        StridedSweep::new(
            self.base,
            self.region_bytes,
            self.stride,
            self.elem_size,
            self.store_period,
        )
    }
}

impl WorkingSetParams {
    fn from_json(v: &Json, what: &str) -> Result<WorkingSetParams, String> {
        check_keys(
            v,
            &["kind", "base", "bytes", "store_fraction", "elem_size"],
            what,
        )?;
        let p = WorkingSetParams {
            base: u64_field(v, "base", what)?,
            bytes: u64_field(v, "bytes", what)?,
            store_fraction: f64_field(v, "store_fraction", what)?,
            elem_size: u8_field(v, "elem_size", what)?,
        };
        p.validate(what)?;
        Ok(p)
    }

    fn fields(&self, what: &str) -> Result<Vec<(&'static str, Json)>, String> {
        Ok(vec![
            ("base", exact_num(self.base, "base", what)?),
            ("bytes", exact_num(self.bytes, "bytes", what)?),
            ("store_fraction", Json::num(self.store_fraction)),
            ("elem_size", Json::num(f64::from(self.elem_size))),
        ])
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        if self.bytes == 0 {
            return Err(format!("{what}: working set must be non-empty"));
        }
        fraction(self.store_fraction, "store_fraction", what)?;
        if self.base >= MAX_EXACT || self.bytes >= MAX_EXACT {
            return Err(format!("{what}: field exceeds the exact JSON range"));
        }
        Ok(())
    }

    fn build(&self) -> WorkingSet {
        WorkingSet::new(self.base, self.bytes, self.store_fraction, self.elem_size)
    }
}

impl PatternNode {
    /// Parses one pattern node from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending path when the object has
    /// an unknown `kind`, unknown or missing keys, or parameter values
    /// a generator constructor would reject.
    pub fn from_json(v: &Json, what: &str) -> Result<PatternNode, String> {
        if v.as_obj().is_none() {
            return Err(format!("{what} must be a JSON object"));
        }
        let kind = need(v, "kind", what)?
            .as_str()
            .ok_or_else(|| format!("{what}: \"kind\" must be a string"))?;
        match kind {
            "strided" => Ok(PatternNode::Strided(StridedParams::from_json(v, what)?)),
            "chase" => {
                check_keys(
                    v,
                    &[
                        "kind",
                        "base",
                        "nodes",
                        "node_bytes",
                        "store_fraction",
                        "seed",
                    ],
                    what,
                )?;
                let node = PatternNode::Chase {
                    base: u64_field(v, "base", what)?,
                    nodes: u32_field(v, "nodes", what)?,
                    node_bytes: u64_field(v, "node_bytes", what)?,
                    store_fraction: f64_field(v, "store_fraction", what)?,
                    seed: seed_field(v, "seed", what)?,
                };
                node.validate(what)?;
                Ok(node)
            }
            "working_set" => Ok(PatternNode::WorkingSet(WorkingSetParams::from_json(
                v, what,
            )?)),
            "zipf" => {
                check_keys(
                    v,
                    &["kind", "base", "slots", "elem_size", "s", "store_fraction"],
                    what,
                )?;
                let node = PatternNode::Zipf {
                    base: u64_field(v, "base", what)?,
                    slots: u32_field(v, "slots", what)?,
                    elem_size: u8_field(v, "elem_size", what)?,
                    s: f64_field(v, "s", what)?,
                    store_fraction: f64_field(v, "store_fraction", what)?,
                };
                node.validate(what)?;
                Ok(node)
            }
            "hot_cold" => {
                check_keys(v, &["kind", "hot", "cold", "hot_fraction"], what)?;
                let node = PatternNode::HotCold {
                    hot: WorkingSetParams::from_json(
                        need(v, "hot", what)?,
                        &format!("{what}.hot"),
                    )?,
                    cold: WorkingSetParams::from_json(
                        need(v, "cold", what)?,
                        &format!("{what}.cold"),
                    )?,
                    hot_fraction: f64_field(v, "hot_fraction", what)?,
                };
                node.validate(what)?;
                Ok(node)
            }
            "loop_nest" => {
                check_keys(v, &["kind", "arrays", "burst"], what)?;
                let arrays = need(v, "arrays", what)?
                    .as_arr()
                    .ok_or_else(|| format!("{what}: \"arrays\" must be an array"))?
                    .iter()
                    .enumerate()
                    .map(|(i, a)| StridedParams::from_json(a, &format!("{what}.arrays[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?;
                let node = PatternNode::LoopNest {
                    arrays,
                    burst: u32_field(v, "burst", what)?,
                };
                node.validate(what)?;
                Ok(node)
            }
            "mixture" => {
                check_keys(v, &["kind", "components"], what)?;
                let components = need(v, "components", what)?
                    .as_arr()
                    .ok_or_else(|| format!("{what}: \"components\" must be an array"))?
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let where_ = format!("{what}.components[{i}]");
                        check_keys(c, &["weight", "pattern"], &where_)?;
                        Ok((
                            f64_field(c, "weight", &where_)?,
                            PatternNode::from_json(
                                need(c, "pattern", &where_)?,
                                &format!("{where_}.pattern"),
                            )?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let node = PatternNode::Mixture(components);
                node.validate(what)?;
                Ok(node)
            }
            "phases" => {
                check_keys(v, &["kind", "phases"], what)?;
                let phases = need(v, "phases", what)?
                    .as_arr()
                    .ok_or_else(|| format!("{what}: \"phases\" must be an array"))?
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let where_ = format!("{what}.phases[{i}]");
                        check_keys(p, &["name", "refs", "pattern"], &where_)?;
                        Ok(PhaseSpec {
                            name: need(p, "name", &where_)?
                                .as_str()
                                .ok_or_else(|| format!("{where_}: \"name\" must be a string"))?
                                .to_string(),
                            refs: u64_field(p, "refs", &where_)?,
                            pattern: PatternNode::from_json(
                                need(p, "pattern", &where_)?,
                                &format!("{where_}.pattern"),
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let node = PatternNode::Phases(phases);
                node.validate(what)?;
                Ok(node)
            }
            other => Err(format!(
                "{what}: unknown pattern kind {other:?} (want strided, chase, working_set, \
                 zipf, hot_cold, loop_nest, mixture or phases)"
            )),
        }
    }

    /// Renders the node in canonical key order.
    ///
    /// # Errors
    ///
    /// Returns a message when a numeric field exceeds the codec's
    /// exact-integer range (only reachable on hand-built trees —
    /// parsed nodes are already range-checked).
    pub fn to_json(&self, what: &str) -> Result<Json, String> {
        let mut fields: Vec<(&'static str, Json)> = Vec::new();
        match self {
            PatternNode::Strided(p) => {
                fields.push(("kind", Json::str("strided")));
                fields.extend(p.fields(what)?);
            }
            PatternNode::Chase {
                base,
                nodes,
                node_bytes,
                store_fraction,
                seed,
            } => {
                fields.push(("kind", Json::str("chase")));
                fields.push(("base", exact_num(*base, "base", what)?));
                fields.push(("nodes", Json::num(f64::from(*nodes))));
                fields.push(("node_bytes", exact_num(*node_bytes, "node_bytes", what)?));
                fields.push(("store_fraction", Json::num(*store_fraction)));
                fields.push(("seed", seed_json(*seed)));
            }
            PatternNode::WorkingSet(p) => {
                fields.push(("kind", Json::str("working_set")));
                fields.extend(p.fields(what)?);
            }
            PatternNode::Zipf {
                base,
                slots,
                elem_size,
                s,
                store_fraction,
            } => {
                fields.push(("kind", Json::str("zipf")));
                fields.push(("base", exact_num(*base, "base", what)?));
                fields.push(("slots", Json::num(f64::from(*slots))));
                fields.push(("elem_size", Json::num(f64::from(*elem_size))));
                fields.push(("s", Json::num(*s)));
                fields.push(("store_fraction", Json::num(*store_fraction)));
            }
            PatternNode::HotCold {
                hot,
                cold,
                hot_fraction,
            } => {
                fields.push(("kind", Json::str("hot_cold")));
                fields.push(("hot", Json::obj(hot.fields(what)?)));
                fields.push(("cold", Json::obj(cold.fields(what)?)));
                fields.push(("hot_fraction", Json::num(*hot_fraction)));
            }
            PatternNode::LoopNest { arrays, burst } => {
                fields.push(("kind", Json::str("loop_nest")));
                let arrays = arrays
                    .iter()
                    .map(|a| Ok(Json::obj(a.fields(what)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                fields.push(("arrays", Json::Arr(arrays)));
                fields.push(("burst", Json::num(f64::from(*burst))));
            }
            PatternNode::Mixture(components) => {
                fields.push(("kind", Json::str("mixture")));
                let components = components
                    .iter()
                    .map(|(w, p)| {
                        Ok(Json::obj(vec![
                            ("weight", Json::num(*w)),
                            ("pattern", p.to_json(what)?),
                        ]))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                fields.push(("components", Json::Arr(components)));
            }
            PatternNode::Phases(phases) => {
                fields.push(("kind", Json::str("phases")));
                let phases = phases
                    .iter()
                    .map(|p| {
                        Ok(Json::obj(vec![
                            ("name", Json::str(&p.name)),
                            ("refs", exact_num(p.refs, "refs", what)?),
                            ("pattern", p.pattern.to_json(what)?),
                        ]))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                fields.push(("phases", Json::Arr(phases)));
            }
        }
        Ok(Json::obj(fields))
    }

    /// Validates the node tree: every check mirrors a constructor panic
    /// in [`crate::gen`], [`crate::mix`] or [`crate::phases`], so a
    /// valid tree always compiles.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self, what: &str) -> Result<(), String> {
        match self {
            PatternNode::Strided(p) => p.validate(what),
            PatternNode::Chase {
                nodes,
                node_bytes,
                store_fraction,
                base,
                ..
            } => {
                if *nodes == 0 {
                    return Err(format!("{what}: chase needs at least one node"));
                }
                if *nodes > MAX_TABLE_SLOTS {
                    return Err(format!("{what}: chase nodes exceed {MAX_TABLE_SLOTS}"));
                }
                fraction(*store_fraction, "store_fraction", what)?;
                if *base >= MAX_EXACT || *node_bytes >= MAX_EXACT {
                    return Err(format!("{what}: field exceeds the exact JSON range"));
                }
                Ok(())
            }
            PatternNode::WorkingSet(p) => p.validate(what),
            PatternNode::Zipf {
                slots,
                s,
                store_fraction,
                base,
                ..
            } => {
                if *slots == 0 {
                    return Err(format!("{what}: zipf needs at least one slot"));
                }
                if *slots > MAX_TABLE_SLOTS {
                    return Err(format!("{what}: zipf slots exceed {MAX_TABLE_SLOTS}"));
                }
                if !(s.is_finite() && *s > 0.0) {
                    return Err(format!("{what}: zipf exponent must be positive"));
                }
                fraction(*store_fraction, "store_fraction", what)?;
                if *base >= MAX_EXACT {
                    return Err(format!("{what}: field exceeds the exact JSON range"));
                }
                Ok(())
            }
            PatternNode::HotCold {
                hot,
                cold,
                hot_fraction,
            } => {
                hot.validate(&format!("{what}.hot"))?;
                cold.validate(&format!("{what}.cold"))?;
                fraction(*hot_fraction, "hot_fraction", what)?;
                Ok(())
            }
            PatternNode::LoopNest { arrays, burst } => {
                if arrays.is_empty() {
                    return Err(format!("{what}: loop nest needs at least one array"));
                }
                if *burst == 0 {
                    return Err(format!("{what}: burst must be positive"));
                }
                for (i, a) in arrays.iter().enumerate() {
                    a.validate(&format!("{what}.arrays[{i}]"))?;
                }
                Ok(())
            }
            PatternNode::Mixture(components) => {
                if components.is_empty() {
                    return Err(format!("{what}: mixture needs at least one component"));
                }
                for (i, (w, p)) in components.iter().enumerate() {
                    if !(w.is_finite() && *w > 0.0) {
                        return Err(format!(
                            "{what}.components[{i}]: weight must be positive, got {w}"
                        ));
                    }
                    p.validate(&format!("{what}.components[{i}].pattern"))?;
                }
                Ok(())
            }
            PatternNode::Phases(phases) => {
                if phases.is_empty() {
                    return Err(format!("{what}: need at least one phase"));
                }
                for (i, p) in phases.iter().enumerate() {
                    if p.refs == 0 {
                        return Err(format!(
                            "{what}.phases[{i}]: a phase must run at least one reference"
                        ));
                    }
                    if p.refs >= MAX_EXACT {
                        return Err(format!(
                            "{what}.phases[{i}]: refs exceeds the exact JSON range"
                        ));
                    }
                    p.pattern.validate(&format!("{what}.phases[{i}].pattern"))?;
                }
                Ok(())
            }
        }
    }

    /// Lowers the node to a boxed runtime pattern. `seed` is the
    /// compile-time effective seed, consumed only by seeded leaves
    /// (pointer chases); it draws nothing from the trace RNG, keeping
    /// compiled trees bit-identical to hand-built ones.
    fn build(&self, seed: u64) -> Box<dyn AccessPattern + Send> {
        match self {
            PatternNode::Strided(p) => Box::new(p.build()),
            PatternNode::Chase {
                base,
                nodes,
                node_bytes,
                store_fraction,
                seed: node_seed,
            } => Box::new(PointerChase::new(
                *base,
                *nodes,
                *node_bytes,
                *store_fraction,
                node_seed ^ seed,
            )),
            PatternNode::WorkingSet(p) => Box::new(p.build()),
            PatternNode::Zipf {
                base,
                slots,
                elem_size,
                s,
                store_fraction,
            } => Box::new(ZipfWorkingSet::new(
                *base,
                *slots,
                *elem_size,
                *s,
                *store_fraction,
            )),
            PatternNode::HotCold {
                hot,
                cold,
                hot_fraction,
            } => Box::new(HotCold::new(hot.build(), cold.build(), *hot_fraction)),
            PatternNode::LoopNest { arrays, burst } => Box::new(LoopNest::new(
                arrays.iter().map(StridedParams::build).collect(),
                *burst,
            )),
            PatternNode::Mixture(components) => {
                let mut builder = MixtureBuilder::new();
                for (weight, pattern) in components {
                    builder = builder.boxed(*weight, pattern.build(seed));
                }
                Box::new(builder.build())
            }
            PatternNode::Phases(phases) => Box::new(PhasedPattern::new(
                phases
                    .iter()
                    .map(|p| Phase::new(p.name.clone(), p.pattern.build(seed), p.refs))
                    .collect(),
            )),
        }
    }
}

impl WorkloadSpec {
    /// Parses and fully validates a spec from its JSON form.
    ///
    /// `name` and `seed_mix` are optional (default: anonymous, 0);
    /// `shape` is optional and defaults to [`TraceShape::default`];
    /// `pattern` is required. A returned spec always compiles without
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or parameter.
    pub fn from_json(v: &Json) -> Result<WorkloadSpec, String> {
        check_keys(v, &["name", "seed_mix", "shape", "pattern"], "workload")?;
        let name = match v.get("name") {
            None => None,
            Some(n) => Some(
                n.as_str()
                    .ok_or("workload: \"name\" must be a string")?
                    .to_string(),
            ),
        };
        let seed_mix = match v.get("seed_mix") {
            None => 0,
            Some(_) => seed_field(v, "seed_mix", "workload")?,
        };
        let shape = match v.get("shape") {
            None => TraceShape::default(),
            Some(s) => {
                check_keys(
                    s,
                    &["mem_fraction", "branch_fraction", "code_bytes"],
                    "workload.shape",
                )?;
                TraceShape {
                    mem_fraction: f64_field(s, "mem_fraction", "workload.shape")?,
                    branch_fraction: f64_field(s, "branch_fraction", "workload.shape")?,
                    code_bytes: u64_field(s, "code_bytes", "workload.shape")?,
                }
            }
        };
        shape
            .validate()
            .map_err(|e| format!("workload.shape: {e}"))?;
        let root = PatternNode::from_json(need(v, "pattern", "workload")?, "workload.pattern")?;
        Ok(WorkloadSpec {
            name,
            seed_mix,
            shape,
            root,
        })
    }

    /// Parses a spec from JSON text — [`WorkloadSpec::from_json`] over
    /// [`Json::parse`].
    ///
    /// # Errors
    ///
    /// Returns the parse or validation message.
    pub fn from_json_str(text: &str) -> Result<WorkloadSpec, String> {
        WorkloadSpec::from_json(&Json::parse(text)?)
    }

    /// Validates the spec; parsed specs are already valid, this is for
    /// hand-built trees.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.shape
            .validate()
            .map_err(|e| format!("workload.shape: {e}"))?;
        if self.shape.code_bytes >= MAX_EXACT {
            return Err("workload.shape: code_bytes exceeds the exact JSON range".to_string());
        }
        self.root.validate("workload.pattern")
    }

    /// The canonical JSON form: fully explicit (defaults filled in),
    /// fixed key order, seeds as hex strings, **without** the name —
    /// this is the byte string the content hash is taken over, so two
    /// differently-named copies of one workload share an identity.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] (parsed
    /// specs never do).
    pub fn canonical_json(&self) -> Json {
        self.validate().expect("canonicalising an invalid spec");
        Json::obj(vec![
            ("seed_mix", seed_json(self.seed_mix)),
            (
                "shape",
                Json::obj(vec![
                    ("mem_fraction", Json::num(self.shape.mem_fraction)),
                    ("branch_fraction", Json::num(self.shape.branch_fraction)),
                    ("code_bytes", Json::num(self.shape.code_bytes as f64)),
                ]),
            ),
            (
                "pattern",
                self.root
                    .to_json("workload.pattern")
                    .expect("validated nodes render"),
            ),
        ])
    }

    /// The full JSON form: the canonical fields plus the name, when
    /// present — what `workloads show` and query echoes print.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn to_json(&self) -> Json {
        let canonical = self.canonical_json();
        match &self.name {
            None => canonical,
            Some(name) => {
                let mut fields = vec![("name".to_string(), Json::str(name))];
                if let Json::Obj(pairs) = canonical {
                    fields.extend(pairs);
                }
                Json::Obj(fields)
            }
        }
    }

    /// The spec's stable content identity: SHA-256 over the canonical
    /// rendering.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn id(&self) -> WorkloadId {
        WorkloadId::from_hex(&sha256_hex(self.canonical_json().render().as_bytes()))
    }

    /// Human-facing label: the name, or `spec:<hash prefix>` for
    /// anonymous specs.
    pub fn label(&self) -> String {
        match &self.name {
            Some(name) => name.clone(),
            None => format!("spec:{}", self.id().short()),
        }
    }

    /// Compiles the spec into its infinite instruction stream,
    /// deterministic in `seed` (which is XORed with
    /// [`seed_mix`](WorkloadSpec::seed_mix), exactly as the legacy
    /// SPEC92 constructors mixed their discriminant).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] (parsed
    /// specs never do).
    pub fn compile(&self, seed: u64) -> CompiledTrace {
        self.validate().expect("compiling an invalid spec");
        let effective = seed ^ self.seed_mix;
        PatternTrace::new(self.root.build(effective), self.shape, effective)
    }

    /// The chunked-streaming form of [`WorkloadSpec::compile`]: `len`
    /// instructions in `chunk_len`-instruction chunks. Chunking never
    /// changes the stream — concatenating the chunks reproduces
    /// `compile(seed).take(len)` bit-identically for any chunk size.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `chunk_len` is zero.
    pub fn chunks(
        &self,
        seed: u64,
        len: usize,
        chunk_len: usize,
    ) -> ChunkedTrace<std::iter::Take<CompiledTrace>> {
        ChunkedTrace::new(self.compile(seed).take(len), chunk_len)
    }
}

// ---------------------------------------------------------------------
// Built-in named specs: the six SPEC92 proxies
// ---------------------------------------------------------------------

fn strided(
    base: u64,
    region_bytes: u64,
    stride: u64,
    elem_size: u8,
    store_period: u32,
) -> StridedParams {
    StridedParams {
        base,
        region_bytes,
        stride,
        elem_size,
        store_period,
    }
}

fn working_set(base: u64, bytes: u64, store_fraction: f64, elem_size: u8) -> WorkingSetParams {
    WorkingSetParams {
        base,
        bytes,
        store_fraction,
        elem_size,
    }
}

/// Declares `program` as a spec tree — component structure, order and
/// parameters mirror `spec92_trace` exactly, which is what makes the
/// compiled streams bit-identical (pinned by test).
fn builtin_tree(program: Spec92Program) -> (PatternNode, TraceShape) {
    use PatternNode::{LoopNest, Mixture, Strided, WorkingSet, Zipf};
    let mib = 1u64 << 20;
    match program {
        Spec92Program::Nasa7 => (
            Mixture(vec![
                (0.16, Strided(strided(0x10_0000, 2 * mib, 8, 8, 5))),
                (
                    0.42,
                    LoopNest {
                        arrays: vec![
                            strided(0x60_0000, 3 * 1024, 8, 8, 0),
                            strided(0x60_0C00, 3 * 1024, 8, 8, 3),
                        ],
                        burst: 384,
                    },
                ),
                (
                    0.18,
                    Zipf {
                        base: 0x68_0000,
                        slots: 16 * 1024,
                        elem_size: 8,
                        s: 1.2,
                        store_fraction: 0.1,
                    },
                ),
                (0.24, WorkingSet(working_set(0x7F_0000, 2048, 0.4, 8))),
            ]),
            TraceShape {
                mem_fraction: 0.34,
                branch_fraction: 0.02,
                code_bytes: 32 * 1024,
            },
        ),
        Spec92Program::Swm256 => (
            Mixture(vec![
                (0.22, Strided(strided(0x100_0000, 4 * mib, 8, 8, 3))),
                (0.14, Strided(strided(0x200_0000, 4 * mib, 8, 8, 3))),
                (0.18, Strided(strided(0x100_0000, 12 * 1024, 8, 8, 0))),
                (0.46, WorkingSet(working_set(0x7F_0000, 3 * 1024, 0.5, 8))),
            ]),
            TraceShape {
                mem_fraction: 0.40,
                branch_fraction: 0.01,
                code_bytes: 16 * 1024,
            },
        ),
        Spec92Program::Wave5 => (
            Mixture(vec![
                (
                    0.32,
                    Zipf {
                        base: 0x300_0000,
                        slots: 96 * 1024,
                        elem_size: 8,
                        s: 1.3,
                        store_fraction: 0.35,
                    },
                ),
                (0.24, Strided(strided(0x400_0000, mib, 8, 8, 4))),
                (0.44, WorkingSet(working_set(0x7E_0000, 4 * 1024, 0.2, 8))),
            ]),
            TraceShape {
                mem_fraction: 0.32,
                branch_fraction: 0.04,
                code_bytes: 96 * 1024,
            },
        ),
        Spec92Program::Ear => (
            Mixture(vec![
                (
                    0.78,
                    LoopNest {
                        arrays: vec![
                            strided(0x50_0000, 2 * 1024, 4, 4, 4),
                            strided(0x50_0800, 2 * 1024, 4, 4, 0),
                            strided(0x50_1000, 2 * 1024, 4, 4, 2),
                        ],
                        burst: 256,
                    },
                ),
                (0.06, Strided(strided(0x58_0000, mib / 2, 8, 8, 3))),
                (0.16, WorkingSet(working_set(0x7D_0000, 2048, 0.3, 4))),
            ]),
            TraceShape {
                mem_fraction: 0.28,
                branch_fraction: 0.03,
                code_bytes: 24 * 1024,
            },
        ),
        Spec92Program::Doduc => (
            Mixture(vec![
                (
                    0.48,
                    Zipf {
                        base: 0x500_0000,
                        slots: 64 * 1024,
                        elem_size: 8,
                        s: 1.2,
                        store_fraction: 0.08,
                    },
                ),
                (0.46, WorkingSet(working_set(0x40_0000, 3 * 1024, 0.15, 8))),
                (0.06, Strided(strided(0x600_0000, 4 * mib, 8, 8, 2))),
            ]),
            TraceShape {
                mem_fraction: 0.25,
                branch_fraction: 0.08,
                code_bytes: 192 * 1024,
            },
        ),
        Spec92Program::Hydro2d => (
            Mixture(vec![
                (0.20, Strided(strided(0x800_0000, 2 * mib, 8, 8, 2))),
                (0.14, Strided(strided(0x900_0000, 2 * mib, 8, 8, 2))),
                (0.16, Strided(strided(0x800_0000, 10 * 1024, 8, 8, 0))),
                (0.50, WorkingSet(working_set(0x7C_0000, 2048, 0.5, 8))),
            ]),
            TraceShape {
                mem_fraction: 0.38,
                branch_fraction: 0.015,
                code_bytes: 20 * 1024,
            },
        ),
    }
}

fn make_builtin(program: Spec92Program) -> WorkloadSpec {
    let (root, shape) = builtin_tree(program);
    WorkloadSpec {
        name: Some(program.name().to_string()),
        // The same discriminant mix `spec92_trace` applies, so
        // `compile(seed)` seeds the trace RNG with the identical value.
        seed_mix: (program as u64).wrapping_mul(SEED_GOLDEN),
        shape,
        root,
    }
}

/// All six built-in named specs, in [`Spec92Program::ALL`] order.
pub fn builtins() -> &'static [WorkloadSpec] {
    static BUILTINS: OnceLock<Vec<WorkloadSpec>> = OnceLock::new();
    BUILTINS.get_or_init(|| Spec92Program::ALL.into_iter().map(make_builtin).collect())
}

/// The built-in spec for one SPEC92 proxy program.
pub fn builtin_spec(program: Spec92Program) -> &'static WorkloadSpec {
    &builtins()[program as usize]
}

/// Looks up a built-in spec by its lowercase name (`"ear"`, …).
pub fn builtin(name: &str) -> Option<&'static WorkloadSpec> {
    builtins().iter().find(|s| s.name.as_deref() == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec92::spec92_trace;

    #[test]
    fn builtins_are_bit_identical_to_the_legacy_constructors() {
        for program in Spec92Program::ALL {
            let spec = builtin_spec(program);
            for seed in [0, 7, 0xDEAD_BEEF] {
                let legacy: Vec<_> = spec92_trace(program, seed).take(4_000).collect();
                let compiled: Vec<_> = spec.compile(seed).take(4_000).collect();
                assert_eq!(legacy, compiled, "{program} diverges at seed {seed}");
            }
        }
    }

    #[test]
    fn chunking_never_changes_the_stream() {
        let spec = builtin_spec(Spec92Program::Ear);
        let whole: Vec<_> = spec.compile(7).take(10_000).collect();
        for chunk_len in [1, 613, 4_096, 10_000, 20_000] {
            let mut streamed = Vec::new();
            spec.chunks(7, 10_000, chunk_len)
                .for_each_chunk(|c| streamed.extend_from_slice(c));
            assert_eq!(whole, streamed, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn canonical_round_trip_preserves_identity() {
        for spec in builtins() {
            let rendered = spec.canonical_json().render();
            let reparsed = WorkloadSpec::from_json_str(&rendered).unwrap();
            assert_eq!(reparsed.id(), spec.id(), "{:?}", spec.name);
            assert_eq!(reparsed.seed_mix, spec.seed_mix);
            assert_eq!(reparsed.root, spec.root);
            assert_eq!(reparsed.name, None, "the canonical form drops the label");
            // And the full form keeps it.
            let named = WorkloadSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(named, **&spec);
        }
    }

    #[test]
    fn name_does_not_enter_the_hash() {
        let mut anon = builtin_spec(Spec92Program::Nasa7).clone();
        anon.name = None;
        assert_eq!(anon.id(), builtin_spec(Spec92Program::Nasa7).id());
        assert_ne!(
            builtin_spec(Spec92Program::Nasa7).id(),
            builtin_spec(Spec92Program::Swm256).id()
        );
    }

    #[test]
    fn seeds_survive_the_hex_string_codec() {
        let spec = builtin_spec(Spec92Program::Hydro2d);
        assert!(
            spec.seed_mix > MAX_EXACT,
            "the interesting case: a seed JSON numbers cannot hold"
        );
        let reparsed = WorkloadSpec::from_json_str(&spec.canonical_json().render()).unwrap();
        assert_eq!(reparsed.seed_mix, spec.seed_mix);
    }

    #[test]
    fn invalid_specs_are_rejected_not_panicked() {
        for (bad, needle) in [
            (
                r#"{"pattern":{"kind":"strided","base":0,"region_bytes":0,"stride":8,"elem_size":8,"store_period":0}}"#,
                "region",
            ),
            (
                r#"{"pattern":{"kind":"strided","base":0,"region_bytes":64,"stride":0,"elem_size":8,"store_period":0}}"#,
                "stride",
            ),
            (
                r#"{"pattern":{"kind":"working_set","base":0,"bytes":64,"store_fraction":1.5,"elem_size":4}}"#,
                "store_fraction",
            ),
            (
                r#"{"pattern":{"kind":"zipf","base":0,"slots":0,"elem_size":8,"s":1.0,"store_fraction":0.1}}"#,
                "slot",
            ),
            (
                r#"{"pattern":{"kind":"zipf","base":0,"slots":64,"elem_size":8,"s":0.0,"store_fraction":0.1}}"#,
                "exponent",
            ),
            (
                r#"{"pattern":{"kind":"mixture","components":[]}}"#,
                "component",
            ),
            (
                r#"{"pattern":{"kind":"mixture","components":[{"weight":0.0,"pattern":{"kind":"working_set","base":0,"bytes":64,"store_fraction":0.0,"elem_size":4}}]}}"#,
                "weight",
            ),
            (r#"{"pattern":{"kind":"phases","phases":[]}}"#, "phase"),
            (
                r#"{"pattern":{"kind":"loop_nest","arrays":[],"burst":4}}"#,
                "array",
            ),
            (
                r#"{"pattern":{"kind":"chase","base":0,"nodes":0,"node_bytes":16,"store_fraction":0.0,"seed":1}}"#,
                "node",
            ),
            (
                r#"{"pattern":{"kind":"warp","base":0}}"#,
                "unknown pattern kind",
            ),
            (
                r#"{"pattern":{"kind":"working_set","base":0,"bytes":64,"store_fraction":0.0,"elem_size":4},"frob":1}"#,
                "unknown key",
            ),
            (
                r#"{"shape":{"mem_fraction":1.5,"branch_fraction":0.0,"code_bytes":1024},"pattern":{"kind":"working_set","base":0,"bytes":64,"store_fraction":0.0,"elem_size":4}}"#,
                "mem_fraction",
            ),
        ] {
            let err = WorkloadSpec::from_json_str(bad).unwrap_err();
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn chase_and_phase_trees_compile_and_stream() {
        let spec = WorkloadSpec::from_json_str(
            r#"{"name":"chase-phases","seed_mix":"0x1234",
                "shape":{"mem_fraction":0.3,"branch_fraction":0.02,"code_bytes":8192},
                "pattern":{"kind":"phases","phases":[
                  {"name":"chase","refs":500,"pattern":{"kind":"chase","base":0,
                   "nodes":256,"node_bytes":32,"store_fraction":0.1,"seed":"0x9"}},
                  {"name":"sweep","refs":300,"pattern":{"kind":"strided","base":65536,
                   "region_bytes":4096,"stride":8,"elem_size":8,"store_period":3}}]}}"#,
        )
        .unwrap();
        let a: Vec<_> = spec.compile(3).take(5_000).collect();
        let b: Vec<_> = spec.compile(3).take(5_000).collect();
        assert_eq!(a, b, "deterministic in seed");
        let c: Vec<_> = spec.compile(4).take(5_000).collect();
        assert_ne!(a, c, "seed changes the stream");
        assert_eq!(spec.label(), "chase-phases");
    }

    #[test]
    fn anonymous_labels_use_the_hash_prefix() {
        let spec = WorkloadSpec::from_json_str(
            r#"{"pattern":{"kind":"working_set","base":0,"bytes":4096,
                "store_fraction":0.3,"elem_size":4}}"#,
        )
        .unwrap();
        let label = spec.label();
        assert!(label.starts_with("spec:"), "{label}");
        assert_eq!(label.len(), "spec:".len() + 12);
        assert_eq!(spec.id().hex().len(), 64);
        assert!(label.contains(&spec.id().short()));
    }
}
