//! Instructions and memory references.
//!
//! The paper's CPU model (Section 3) is deliberately minimal: every
//! instruction retires in one cycle unless it is a load/store that stalls on
//! the memory hierarchy. The trace representation mirrors this: an
//! instruction is "a possibly-absent memory reference".

use crate::addr::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction of a data memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A read from memory into the processor.
    Load,
    /// A write from the processor towards memory.
    Store,
}

impl MemOp {
    /// Returns `true` for [`MemOp::Load`].
    pub const fn is_load(self) -> bool {
        matches!(self, MemOp::Load)
    }

    /// Returns `true` for [`MemOp::Store`].
    pub const fn is_store(self) -> bool {
        matches!(self, MemOp::Store)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOp::Load => f.write_str("load"),
            MemOp::Store => f.write_str("store"),
        }
    }
}

/// A single data memory reference: operation, byte address and operand size.
///
/// The layout is pinned at 16 bytes (`repr(C)`, widest field first):
/// 8 bytes of address, one byte each for the operation and the operand
/// size, six bytes of padding. `MemOp` has only two valid bit patterns,
/// so `Option<MemRef>` niche-packs the access kind — `None` lives in a
/// spare `op` encoding and costs no extra byte (asserted below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(C)]
pub struct MemRef {
    /// Byte address of the first byte touched.
    pub addr: Addr,
    /// Load or store.
    pub op: MemOp,
    /// Operand size in bytes (1, 2, 4 or 8).
    pub size: u8,
}

impl MemRef {
    /// Creates a load reference.
    pub fn load(addr: impl Into<Addr>, size: u8) -> Self {
        MemRef {
            op: MemOp::Load,
            addr: addr.into(),
            size,
        }
    }

    /// Creates a store reference.
    pub fn store(addr: impl Into<Addr>, size: u8) -> Self {
        MemRef {
            op: MemOp::Store,
            addr: addr.into(),
            size,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}B @ {}", self.op, self.size, self.addr)
    }
}

/// One executed instruction of the trace.
///
/// `pc` is synthetic (instruction index scaled by 4) but lets the
/// instruction-cache path of the simulator exercise realistic sequential
/// fetch behaviour with occasional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// Address the instruction was fetched from.
    pub pc: Addr,
    /// The data reference performed by this instruction, if any.
    pub mem: Option<MemRef>,
}

impl Instr {
    /// An instruction with no data reference (ALU, branch, ...).
    pub fn plain(pc: impl Into<Addr>) -> Self {
        Instr {
            pc: pc.into(),
            mem: None,
        }
    }

    /// An instruction performing the given data reference.
    pub fn mem(pc: impl Into<Addr>, mem: MemRef) -> Self {
        Instr {
            pc: pc.into(),
            mem: Some(mem),
        }
    }

    /// Returns `true` if this instruction performs a data load.
    pub fn is_load(&self) -> bool {
        matches!(
            self.mem,
            Some(MemRef {
                op: MemOp::Load,
                ..
            })
        )
    }

    /// Returns `true` if this instruction performs a data store.
    pub fn is_store(&self) -> bool {
        matches!(
            self.mem,
            Some(MemRef {
                op: MemOp::Store,
                ..
            })
        )
    }
}

/// Trace bytes per instruction. Streaming-pipeline memory budgets
/// (`bench::tracestore` byte accounting, `REPRO_TRACE_BUDGET`) assume
/// this exact figure, so the layout is asserted at compile time.
pub const INSTR_BYTES: usize = 24;

// Static layout assertions: `MemRef` packs into 16 bytes, the access
// kind rides in `MemOp`'s niche (an `Option` wrapper is free), and an
// `Instr` is therefore exactly `pc` + `Option<MemRef>` = 24 bytes.
// Growing any of these silently would inflate every materialised trace
// and invalidate the store's byte accounting — fail the build instead.
const _: () = assert!(std::mem::size_of::<MemRef>() == 16);
const _: () = assert!(std::mem::size_of::<Option<MemRef>>() == 16);
const _: () = assert!(std::mem::size_of::<Instr>() == INSTR_BYTES);
const _: () = assert!(std::mem::align_of::<Instr>() == 8);

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mem {
            Some(m) => write!(f, "pc {}: {}", self.pc, m),
            None => write!(f, "pc {}: alu", self.pc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let l = MemRef::load(0x10u64, 4);
        assert!(l.op.is_load());
        assert_eq!(l.addr, Addr::new(0x10));
        let s = MemRef::store(0x20u64, 8);
        assert!(s.op.is_store());
        assert_eq!(s.size, 8);
    }

    #[test]
    fn instr_predicates() {
        let i = Instr::mem(0u64, MemRef::load(0x10u64, 4));
        assert!(i.is_load() && !i.is_store());
        let j = Instr::mem(4u64, MemRef::store(0x10u64, 4));
        assert!(j.is_store() && !j.is_load());
        let k = Instr::plain(8u64);
        assert!(!k.is_load() && !k.is_store());
    }

    #[test]
    fn layout_is_pinned() {
        // The const asserts above already fail the build on drift; this
        // test states the contract where a failure names the numbers.
        assert_eq!(std::mem::size_of::<Instr>(), INSTR_BYTES);
        assert_eq!(
            std::mem::size_of::<Option<MemRef>>(),
            std::mem::size_of::<MemRef>(),
            "the access kind must stay niche-packed"
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Instr::plain(0u64).to_string().is_empty());
        assert!(Instr::mem(0u64, MemRef::load(4u64, 4))
            .to_string()
            .contains("load"));
    }
}
