//! Streaming reuse-distance histograms in `O(refs · log distinct)`.
//!
//! [`crate::reuse::ReuseProfile`]'s original stack walk paid
//! `O(distinct lines)` per reference (`Vec::remove` on the LRU stack).
//! This module replaces the stack with Mattson's classic tree
//! formulation: every line's *last-access time* occupies a slot on a
//! timeline, a Fenwick tree counts live slots, and the reuse distance
//! of an access is simply the number of live slots **after** the line's
//! previous slot — one prefix query and two point updates, all
//! `O(log n)`. Slots are recycled by periodic compaction (amortised
//! `O(log n)` per access), so the structure never grows beyond
//! `2 × distinct lines`.
//!
//! [`ReuseHistograms`] runs one [`ReuseDistCounter`] per power-of-two
//! line granularity over a single pass of the trace — the halving of a
//! line deterministically splits its reuse stream, so every granularity
//! the design grid will ever ask about is folded at once. The fold is
//! chunk-invariant (`process_slice` over any partition is bit-identical
//! to per-instruction feeding) and mirrors
//! `StackDistSweep`'s warm-up snapshot contract exactly: totals are
//! frozen when the instruction count reaches `warmup`, the tree state
//! (cache contents) survives, and the post-warm-up histogram is the
//! difference — so the analytic backend built on top agrees with the
//! simulated sweep on warmed statistics.

use crate::instr::Instr;

/// Open-addressing `line → slot` map with a multiply-xorshift hash and
/// linear probing. The standard library map's SipHash dominates the
/// counter's inner loop; lines are already well-mixed integers, so a
/// single multiply is enough. Keys are stored `+1` so `0` can mark an
/// empty bucket.
#[derive(Debug, Clone)]
struct LineMap {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

impl LineMap {
    const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    fn new() -> Self {
        LineMap {
            keys: vec![0; 1024],
            vals: vec![0; 1024],
            len: 0,
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        let h = key.wrapping_mul(Self::SEED);
        ((h ^ (h >> 29)) as usize) & (self.keys.len() - 1)
    }

    /// Returns the slot of `line`, or `None` if unseen.
    #[inline]
    fn get(&self, line: u64) -> Option<u32> {
        let key = line + 1;
        let mask = self.keys.len() - 1;
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or updates `line → slot`.
    #[inline]
    fn set(&mut self, line: u64, slot: u32) {
        let key = line + 1;
        let mask = self.keys.len() - 1;
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = slot;
                return;
            }
            if k == 0 {
                self.keys[i] = key;
                self.vals[i] = slot;
                self.len += 1;
                if self.len * 4 > self.keys.len() * 3 {
                    self.grow();
                }
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![0; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![0; old_keys.len() * 2];
        self.vals = vec![0; old_keys.len() * 2];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                self.set(k - 1, v);
            }
        }
    }

    /// Visits every `(line, slot)` pair in arbitrary order.
    fn for_each(&self, mut f: impl FnMut(u64, u32)) {
        for (k, v) in self.keys.iter().zip(&self.vals) {
            if *k != 0 {
                f(*k - 1, *v);
            }
        }
    }

    /// Rewrites every stored slot through `f` (used by compaction).
    fn remap(&mut self, f: impl Fn(u32) -> u32) {
        for (k, v) in self.keys.iter().zip(self.vals.iter_mut()) {
            if *k != 0 {
                *v = f(*v);
            }
        }
    }

    fn bytes(&self) -> usize {
        self.keys.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

/// An exact single-granularity Mattson reuse-distance counter,
/// `O(log distinct-lines)` amortised per reference.
///
/// Feed it line numbers in trace order via [`ReuseDistCounter::access`];
/// the histogram, cold-miss and total counters match
/// [`crate::reuse::ReuseProfile::from_trace`] bit for bit.
#[derive(Debug, Clone)]
pub struct ReuseDistCounter {
    /// `hist[d]` = references at distance exactly `d`; last bucket open.
    hist: Vec<u64>,
    cold: u64,
    total: u64,
    /// Line-changing accesses (`line != previous line`).
    moves: u64,
    /// Line-changing accesses to an *adjacent* line (`|Δline| == 1`) —
    /// the sequential-run fraction `seq / moves` feeds the analytic
    /// backend's spread-vs-random set-conflict blend.
    seq: u64,
    /// Distinct-line footprint over `line mod 2^SET_CLASS_LOG2` — the
    /// bit-selection set-index residues, each line counted once (on its
    /// cold first touch). Power-of-two strides and aligned arrays pile
    /// footprint onto a subset of residue classes, which is exactly the
    /// aliasing an aggregate distance histogram cannot see; the
    /// analytic backend turns this concentration into an *effective*
    /// set count. Footprint (not access) mass is the right statistic:
    /// conflicts are between resident lines, and weighting by access
    /// count lets a few hot lines masquerade as heavy aliasing.
    set_mass: Vec<u64>,
    map: LineMap,
    /// Fenwick tree over time slots, 1-indexed; `bit[i]` covers leaf
    /// marks where a mark means "some line's most recent access lives
    /// in this slot".
    bit: Vec<u32>,
    /// Slot capacity (power of two, `bit.len() - 1`).
    cap: usize,
    /// Next unassigned slot; slots `0..next_slot` have been issued.
    next_slot: usize,
    /// Marked (live) slots — equals the number of distinct lines seen.
    live: usize,
    /// Most recently accessed line (`u64::MAX` before the first access)
    /// — repeated touches of the top-of-stack line are distance 0 and
    /// skip the tree entirely.
    last_line: u64,
}

/// Residue classes tracked for set-utilization statistics: enough for
/// every set count up to 2^14 (a 4 MB direct-mapped cache of 256-byte
/// lines); coarser moduli fold down by halving.
pub const SET_CLASS_LOG2: u32 = 14;

impl ReuseDistCounter {
    const INITIAL_SLOTS: usize = 1024;

    /// A counter whose histogram caps at `max_distance` (larger
    /// distances land in the final, open bucket).
    ///
    /// # Panics
    ///
    /// Panics if `max_distance` is zero.
    pub fn new(max_distance: usize) -> Self {
        assert!(max_distance > 0, "need at least one distance bucket");
        ReuseDistCounter {
            hist: vec![0; max_distance + 1],
            cold: 0,
            total: 0,
            moves: 0,
            seq: 0,
            set_mass: vec![0; 1 << SET_CLASS_LOG2],
            map: LineMap::new(),
            bit: vec![0; Self::INITIAL_SLOTS + 1],
            cap: Self::INITIAL_SLOTS,
            next_slot: 0,
            live: 0,
            last_line: u64::MAX,
        }
    }

    #[inline]
    fn bit_add(&mut self, slot: usize, delta: i32) {
        let mut i = slot + 1;
        while i <= self.cap {
            self.bit[i] = self.bit[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Live marks in slots `0..=slot`.
    #[inline]
    fn bit_prefix(&self, slot: usize) -> u32 {
        let mut i = slot + 1;
        let mut sum = 0u32;
        while i > 0 {
            sum += self.bit[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Records one reference to `line`, updating the histogram.
    #[inline]
    pub fn access(&mut self, line: u64) {
        self.total += 1;
        if line == self.last_line {
            // Top-of-stack touch: distance 0 by definition, and the
            // line's slot is already the most recent mark, so the tree
            // needs no update.
            self.hist[0] += 1;
            return;
        }
        self.moves += 1;
        if self.last_line != u64::MAX && line.abs_diff(self.last_line) == 1 {
            self.seq += 1;
        }
        self.last_line = line;
        // Allocate before touching any mark: compaction (inside
        // `alloc_slot`) rebuilds the tree from the map, so the map must
        // still describe exactly the live marks when it runs — and it
        // may remap the line's slot, so the lookup comes after.
        let fresh = self.alloc_slot();
        match self.map.get(line) {
            Some(slot) => {
                // Every mark after the line's previous slot is a line
                // touched since — the reuse distance.
                let distance = self.live - self.bit_prefix(slot as usize) as usize;
                let last = self.hist.len() - 1;
                self.hist[distance.min(last)] += 1;
                self.bit_add(slot as usize, -1);
                self.bit_add(fresh, 1);
                self.map.set(line, fresh as u32);
            }
            None => {
                self.cold += 1;
                self.set_mass[(line & ((1 << SET_CLASS_LOG2) - 1)) as usize] += 1;
                self.bit_add(fresh, 1);
                self.map.set(line, fresh as u32);
                self.live += 1;
            }
        }
    }

    #[inline]
    fn alloc_slot(&mut self) -> usize {
        if self.next_slot == self.cap {
            self.compact();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        slot
    }

    /// Reassigns the `live` marked slots to `0..live` (preserving
    /// order) and rebuilds the tree. Runs when the timeline is
    /// exhausted; capacity doubles whenever more than half the slots
    /// are live, so at least `cap / 2` accesses separate compactions
    /// and the amortised cost stays `O(log n)` per access.
    fn compact(&mut self) {
        if self.live * 2 > self.cap {
            self.cap *= 2;
        }
        let mut entries: Vec<(u32, u64)> = Vec::with_capacity(self.live);
        self.map.for_each(|line, slot| entries.push((slot, line)));
        entries.sort_unstable();
        let mut order = vec![0u32; self.next_slot];
        for (rank, &(slot, line)) in entries.iter().enumerate() {
            order[slot as usize] = rank as u32;
            let _ = line;
        }
        self.map.remap(|slot| order[slot as usize]);
        // All of `0..live` is marked: a Fenwick tree over an all-ones
        // array is `bit[i] = lowbit(i)` for i ≤ live, clipped to the
        // range each node covers.
        self.bit = vec![0; self.cap + 1];
        for i in 1..=self.cap {
            let low = i & i.wrapping_neg();
            let covered_from = i - low; // node i covers (i-low, i]
            if covered_from < self.live {
                self.bit[i] = (self.live.min(i) - covered_from) as u32;
            }
        }
        self.next_slot = self.live;
    }

    /// Total references counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) references.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Line-changing accesses.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Line-changing accesses that moved to an adjacent line.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Distinct-line footprint per `line mod 2^SET_CLASS_LOG2` residue
    /// class (each line counted once, at its first touch).
    pub fn set_mass(&self) -> &[u64] {
        &self.set_mass
    }

    /// Distinct lines seen.
    pub fn distinct_lines(&self) -> usize {
        self.live
    }

    /// The histogram (`[d]` = references at distance `d`, last bucket
    /// open).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Approximate heap footprint, for cache-budget accounting.
    pub fn bytes(&self) -> usize {
        (self.hist.len() + self.set_mass.len()) * std::mem::size_of::<u64>()
            + self.bit.len() * std::mem::size_of::<u32>()
            + self.map.bytes()
    }
}

/// Post-warm-up totals of one granularity, frozen Mattson state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HistTotals {
    hist: Vec<u64>,
    cold: u64,
    total: u64,
    moves: u64,
    seq: u64,
}

/// One streaming pass, every power-of-two line granularity.
///
/// A [`bench`-style](crate::chunk) chunk fold: feed instructions via
/// [`ReuseHistograms::process_slice`] (any chunking — the result is
/// bit-identical) and read per-granularity [`crate::ReuseProfile`]s
/// back with [`ReuseHistograms::profile`]. Warm-up follows the
/// `StackDistSweep` contract: the histogram snapshot is taken the
/// moment the instruction count reaches `warmup`, tree state survives,
/// and [`ReuseHistograms::profile`] reports post-warm-up counts.
#[derive(Debug, Clone)]
pub struct ReuseHistograms {
    min_line_shift: u32,
    counters: Vec<ReuseDistCounter>,
    warm_base: Option<Vec<HistTotals>>,
    instrs: u64,
    warmup: u64,
    max_distance: usize,
}

impl ReuseHistograms {
    /// Counters for every power-of-two line size in
    /// `min_line_bytes..=max_line_bytes`, each with `max_distance`
    /// histogram buckets, statistics frozen at `warmup` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the line bounds are not powers of two, are out of
    /// order, or `max_distance` is zero.
    pub fn new(min_line_bytes: u64, max_line_bytes: u64, max_distance: usize, warmup: u64) -> Self {
        assert!(
            min_line_bytes.is_power_of_two() && max_line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            min_line_bytes <= max_line_bytes,
            "line size bounds out of order"
        );
        let min_shift = min_line_bytes.trailing_zeros();
        let max_shift = max_line_bytes.trailing_zeros();
        let counters = (min_shift..=max_shift)
            .map(|_| ReuseDistCounter::new(max_distance))
            .collect();
        ReuseHistograms {
            min_line_shift: min_shift,
            counters,
            warm_base: None,
            instrs: 0,
            warmup,
            max_distance,
        }
    }

    /// Feeds one instruction (the scalar mirror of
    /// [`ReuseHistograms::process_slice`]).
    pub fn process(&mut self, instr: Instr) {
        if let Some(m) = instr.mem {
            let base = m.addr.raw() >> self.min_line_shift;
            for (i, counter) in self.counters.iter_mut().enumerate() {
                counter.access(base >> i);
            }
        }
        self.instrs += 1;
        if self.instrs == self.warmup {
            self.snapshot();
        }
    }

    /// Feeds a block of instructions, bit-identical to per-instruction
    /// [`ReuseHistograms::process`] calls (including a warm-up boundary
    /// inside the slice).
    pub fn process_slice(&mut self, instrs: &[Instr]) {
        let mut rest = instrs;
        if self.warm_base.is_none() && self.warmup > self.instrs {
            let until = (self.warmup - self.instrs) as usize;
            if until <= rest.len() {
                let (head, tail) = rest.split_at(until);
                self.burst(head);
                self.snapshot();
                rest = tail;
            }
        }
        self.burst(rest);
    }

    fn burst(&mut self, instrs: &[Instr]) {
        let shift = self.min_line_shift;
        for instr in instrs {
            if let Some(m) = instr.mem {
                let base = m.addr.raw() >> shift;
                for (i, counter) in self.counters.iter_mut().enumerate() {
                    counter.access(base >> i);
                }
            }
        }
        self.instrs += instrs.len() as u64;
    }

    fn snapshot(&mut self) {
        self.warm_base = Some(
            self.counters
                .iter()
                .map(|c| HistTotals {
                    hist: c.hist.clone(),
                    cold: c.cold,
                    total: c.total,
                    moves: c.moves,
                    seq: c.seq,
                })
                .collect(),
        );
    }

    /// Instructions folded so far.
    pub fn instructions(&self) -> u64 {
        self.instrs
    }

    /// The configured warm-up length.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Histogram bucket cap shared by every granularity.
    pub fn max_distance(&self) -> usize {
        self.max_distance
    }

    /// The line granularities folded, ascending.
    pub fn line_sizes(&self) -> Vec<u64> {
        (0..self.counters.len() as u32)
            .map(|i| 1u64 << (self.min_line_shift + i))
            .collect()
    }

    /// The post-warm-up reuse profile at `line_bytes`, or `None` if the
    /// granularity is outside the folded range. Mirrors
    /// `StackDistSweep::stats`: the warm-up snapshot (when one was
    /// taken) is subtracted from the totals.
    pub fn profile(&self, line_bytes: u64) -> Option<crate::reuse::ReuseProfile> {
        if !line_bytes.is_power_of_two() {
            return None;
        }
        let shift = line_bytes.trailing_zeros();
        if shift < self.min_line_shift {
            return None;
        }
        let idx = (shift - self.min_line_shift) as usize;
        let counter = self.counters.get(idx)?;
        let (hist, cold, total) = match self.warm_base.as_ref().map(|b| &b[idx]) {
            Some(base) => {
                let hist = counter
                    .hist
                    .iter()
                    .zip(&base.hist)
                    .map(|(now, then)| now - then)
                    .collect();
                (hist, counter.cold - base.cold, counter.total - base.total)
            }
            None => (counter.hist.clone(), counter.cold, counter.total),
        };
        Some(crate::reuse::ReuseProfile::from_parts(
            line_bytes, hist, cold, total,
        ))
    }

    /// The post-warm-up sequential-run fraction at `line_bytes`: the
    /// share of line-changing accesses that moved to an adjacent line.
    /// `0.0` for a granularity with no line changes. The analytic
    /// backend uses this to weigh deterministic round-robin set
    /// spreading against random placement.
    pub fn seq_fraction(&self, line_bytes: u64) -> Option<f64> {
        if !line_bytes.is_power_of_two() {
            return None;
        }
        let shift = line_bytes.trailing_zeros();
        if shift < self.min_line_shift {
            return None;
        }
        let idx = (shift - self.min_line_shift) as usize;
        let counter = self.counters.get(idx)?;
        let (moves, seq) = match self.warm_base.as_ref().map(|b| &b[idx]) {
            Some(base) => (counter.moves - base.moves, counter.seq - base.seq),
            None => (counter.moves, counter.seq),
        };
        Some(if moves == 0 {
            0.0
        } else {
            seq as f64 / moves as f64
        })
    }

    /// The distinct-line footprint over set-index residues
    /// (`line mod 2^SET_CLASS_LOG2`) at `line_bytes`, or `None` for an
    /// unfolded granularity. Deliberately *not* warm-up-diffed: lines
    /// first touched during warm-up still occupy sets afterwards, so
    /// the set-conflict model wants the whole footprint.
    pub fn set_mass(&self, line_bytes: u64) -> Option<&[u64]> {
        if !line_bytes.is_power_of_two() {
            return None;
        }
        let shift = line_bytes.trailing_zeros();
        if shift < self.min_line_shift {
            return None;
        }
        let idx = (shift - self.min_line_shift) as usize;
        Some(self.counters.get(idx)?.set_mass())
    }

    /// Approximate heap footprint across all granularities, for the
    /// trace-store byte budget.
    pub fn bytes(&self) -> usize {
        let counters: usize = self.counters.iter().map(ReuseDistCounter::bytes).sum();
        let base = self
            .warm_base
            .as_ref()
            .map(|b| {
                b.iter()
                    .map(|t| t.hist.len() * std::mem::size_of::<u64>())
                    .sum()
            })
            .unwrap_or(0);
        counters + base + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemRef;
    use crate::reuse::ReuseProfile;
    use crate::spec92::{spec92_trace, Spec92Program};

    fn loads(addrs: &[u64]) -> Vec<Instr> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| Instr::mem((i as u64) * 4, MemRef::load(a, 4)))
            .collect()
    }

    #[test]
    fn counter_matches_hand_checked_stack() {
        // Lines at 32 B: A B A C B A → cold 3, distances 1, 2, 2.
        let mut c = ReuseDistCounter::new(8);
        for addr in [0x00u64, 0x20, 0x00, 0x40, 0x20, 0x00] {
            c.access(addr >> 5);
        }
        assert_eq!(c.cold(), 3);
        assert_eq!(c.histogram()[1], 1);
        assert_eq!(c.histogram()[2], 2);
        assert_eq!(c.total(), 6);
        assert_eq!(c.distinct_lines(), 3);
    }

    #[test]
    fn counter_survives_compaction() {
        // Enough slot churn to force several compactions at the
        // initial 1024-slot capacity, against a brute-force stack.
        let addrs: Vec<u64> = (0..40_000u64).map(|i| (i * 2654435761) % 4096).collect();
        let mut c = ReuseDistCounter::new(512);
        for &a in &addrs {
            c.access(a);
        }
        let brute = ReuseProfile::from_trace(
            loads(&addrs.iter().map(|a| a * 64).collect::<Vec<_>>()),
            64,
            512,
        );
        assert_eq!(c.histogram(), brute.histogram());
        assert_eq!(c.cold(), brute.cold());
        assert_eq!(c.total(), brute.total());
    }

    #[test]
    fn compaction_during_a_reuse_access_keeps_distances_exact() {
        // nasa7's strided doubles force compactions while reuses are in
        // flight; a naive unbounded LRU stack is the independent oracle
        // (`from_trace` delegates to the counter, so it cannot be one).
        // Regression: compaction once rebuilt the tree from a map entry
        // whose mark had already been retired, resurrecting the stale
        // mark and silently shifting every later distance down by one.
        let trace: Vec<Instr> = spec92_trace(Spec92Program::Nasa7, 7).take(20_000).collect();
        let cap = 1 << 14;
        let mut fold = ReuseHistograms::new(8, 128, cap, 0);
        fold.process_slice(&trace);
        for line in [8u64, 16, 64] {
            let mut stack: Vec<u64> = Vec::new();
            let mut hist = vec![0u64; cap + 1];
            let mut cold = 0u64;
            for i in &trace {
                let Some(m) = i.mem else { continue };
                let l = m.addr.line(line).raw();
                match stack.iter().position(|&x| x == l) {
                    Some(pos) => {
                        hist[pos.min(cap)] += 1;
                        stack.remove(pos);
                    }
                    None => cold += 1,
                }
                stack.insert(0, l);
            }
            let p = fold.profile(line).unwrap();
            assert_eq!(p.histogram(), &hist[..], "line={line}");
            assert_eq!(p.cold(), cold, "line={line}");
        }
    }

    #[test]
    fn fold_matches_per_granularity_from_trace() {
        let trace: Vec<Instr> = spec92_trace(Spec92Program::Ear, 99).take(8_000).collect();
        let mut fold = ReuseHistograms::new(8, 128, 256, 0);
        fold.process_slice(&trace);
        for line in [8u64, 16, 32, 64, 128] {
            let got = fold.profile(line).expect("granularity folded");
            let want = ReuseProfile::from_trace(trace.iter().copied(), line, 256);
            assert_eq!(got, want, "line={line}");
        }
        assert_eq!(fold.profile(4), None);
        assert_eq!(fold.profile(256), None);
        assert_eq!(fold.profile(48), None, "non-power-of-two");
    }

    #[test]
    fn chunked_fold_is_bit_identical() {
        let trace: Vec<Instr> = spec92_trace(Spec92Program::Wave5, 3).take(6_000).collect();
        let mut whole = ReuseHistograms::new(16, 64, 128, 2_000);
        whole.process_slice(&trace);
        for chunk_len in [1usize, 7, 333, 1999, 2000, 2001, 6_000] {
            let mut chunked = ReuseHistograms::new(16, 64, 128, 2_000);
            for chunk in trace.chunks(chunk_len) {
                chunked.process_slice(chunk);
            }
            for line in [16u64, 32, 64] {
                assert_eq!(
                    chunked.profile(line),
                    whole.profile(line),
                    "chunk_len={chunk_len} line={line}"
                );
            }
        }
        // Scalar feeding is the same fold too.
        let mut scalar = ReuseHistograms::new(16, 64, 128, 2_000);
        for &i in &trace {
            scalar.process(i);
        }
        assert_eq!(scalar.profile(32), whole.profile(32));
    }

    #[test]
    fn warmup_freezes_totals_but_not_tree_state() {
        // One line touched only during warm-up, re-touched after: the
        // post-warm-up profile must see a *reuse* (warm tree state), not
        // a cold miss, and count only post-warm-up references.
        let trace = loads(&[0x00, 0x20, 0x40, 0x00]);
        let mut fold = ReuseHistograms::new(32, 32, 8, 3);
        fold.process_slice(&trace);
        let p = fold.profile(32).unwrap();
        assert_eq!(p.total(), 1);
        assert_eq!(p.cold(), 0, "line A is warm, not cold");
        assert_eq!(p.histogram()[2], 1, "B and C touched since A");
    }

    #[test]
    fn warmup_longer_than_trace_counts_everything() {
        let trace = loads(&[0x00, 0x20, 0x00]);
        let mut fold = ReuseHistograms::new(32, 32, 8, 1_000);
        fold.process_slice(&trace);
        let p = fold.profile(32).unwrap();
        assert_eq!(p.total(), 3);
        assert_eq!(p.cold(), 2);
    }

    #[test]
    fn distances_beyond_the_cap_land_in_the_open_bucket() {
        // 8 distinct lines cycled twice at cap 4: wrap distances are 7,
        // beyond the cap.
        let addrs: Vec<u64> = (0..16u64).map(|i| (i % 8) * 32).collect();
        let mut c = ReuseDistCounter::new(4);
        for &a in &addrs {
            c.access(a >> 5);
        }
        assert_eq!(c.cold(), 8);
        assert_eq!(c.histogram()[4], 8, "open bucket collects the tail");
    }

    #[test]
    fn bytes_accounts_for_growth() {
        let mut fold = ReuseHistograms::new(8, 64, 1024, 0);
        let before = fold.bytes();
        let trace: Vec<Instr> = spec92_trace(Spec92Program::Nasa7, 5).take(20_000).collect();
        fold.process_slice(&trace);
        assert!(fold.bytes() >= before);
        assert!(fold.bytes() > 4 * 1025 * 8, "histograms alone exceed this");
    }
}
