//! Phase-structured workloads.
//!
//! Table 1 of the paper defines an application as "a task, a subroutine,
//! or a phase of computation" — the methodology is meant to be applied
//! per phase, because `{R, W, α, φ}` can differ wildly between, say, a
//! stride-sweeping setup phase and a pointer-heavy solve phase. This
//! module provides a deterministic phase alternator so experiments can
//! measure exactly that.

use crate::gen::{AccessPattern, PatternTrace, TraceShape};
use crate::instr::MemRef;
use rand::rngs::SmallRng;

/// One phase: a pattern and how many *references* it runs for.
pub struct Phase {
    /// Phase label (used by experiments when reporting per-phase stats).
    pub name: String,
    pattern: Box<dyn AccessPattern + Send>,
    refs: u64,
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase")
            .field("name", &self.name)
            .field("refs", &self.refs)
            .finish()
    }
}

impl Phase {
    /// Creates a phase running `refs` data references of `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is zero.
    pub fn new(
        name: impl Into<String>,
        pattern: impl AccessPattern + Send + 'static,
        refs: u64,
    ) -> Self {
        assert!(refs > 0, "a phase must run at least one reference");
        Phase {
            name: name.into(),
            pattern: Box::new(pattern),
            refs,
        }
    }
}

/// Cycles through its phases, spending each phase's reference budget
/// before moving to the next (wrapping around indefinitely).
#[derive(Debug)]
pub struct PhasedPattern {
    phases: Vec<Phase>,
    current: usize,
    spent: u64,
}

impl PhasedPattern {
    /// Creates a phased pattern.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        PhasedPattern {
            phases,
            current: 0,
            spent: 0,
        }
    }

    /// The phase that will serve the next reference.
    pub fn current_phase(&self) -> &str {
        &self.phases[self.current].name
    }

    /// Total references in one full cycle through the phases.
    pub fn cycle_refs(&self) -> u64 {
        self.phases.iter().map(|p| p.refs).sum()
    }

    /// Lifts the phased pattern into an instruction trace.
    pub fn into_trace(self, shape: TraceShape, seed: u64) -> PatternTrace<PhasedPattern> {
        PatternTrace::new(self, shape, seed)
    }
}

impl AccessPattern for PhasedPattern {
    fn next_ref(&mut self, rng: &mut SmallRng) -> MemRef {
        if self.spent >= self.phases[self.current].refs {
            self.spent = 0;
            self.current = (self.current + 1) % self.phases.len();
        }
        self.spent += 1;
        self.phases[self.current].pattern.next_ref(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{StridedSweep, WorkingSet};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn phases_alternate_on_budget() {
        let mut p = PhasedPattern::new(vec![
            Phase::new("sweep", StridedSweep::new(0, 1024, 4, 4, 0), 3),
            Phase::new("hot", WorkingSet::new(0x10_0000, 64, 0.0, 4), 2),
        ]);
        let mut r = rng();
        let regions: Vec<bool> = (0..10)
            .map(|_| p.next_ref(&mut r).addr.raw() >= 0x10_0000)
            .collect();
        assert_eq!(
            regions,
            vec![false, false, false, true, true, false, false, false, true, true]
        );
    }

    #[test]
    fn current_phase_tracks_position() {
        let mut p = PhasedPattern::new(vec![
            Phase::new("a", WorkingSet::new(0, 64, 0.0, 4), 2),
            Phase::new("b", WorkingSet::new(0, 64, 0.0, 4), 2),
        ]);
        let mut r = rng();
        assert_eq!(p.current_phase(), "a");
        p.next_ref(&mut r);
        p.next_ref(&mut r);
        p.next_ref(&mut r); // third ref rolls into phase b
        assert_eq!(p.current_phase(), "b");
    }

    #[test]
    fn cycle_refs_sums_budgets() {
        let p = PhasedPattern::new(vec![
            Phase::new("a", WorkingSet::new(0, 64, 0.0, 4), 30),
            Phase::new("b", WorkingSet::new(0, 64, 0.0, 4), 70),
        ]);
        assert_eq!(p.cycle_refs(), 100);
    }

    #[test]
    fn into_trace_produces_instructions() {
        let p = PhasedPattern::new(vec![Phase::new(
            "only",
            WorkingSet::new(0, 1024, 0.3, 4),
            100,
        )]);
        let n = p.into_trace(TraceShape::default(), 5).take(500).count();
        assert_eq!(n, 500);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panics() {
        PhasedPattern::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn zero_budget_panics() {
        Phase::new("x", WorkingSet::new(0, 64, 0.0, 4), 0);
    }
}
