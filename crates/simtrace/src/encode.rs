//! Compact binary trace encoding.
//!
//! Recording a generated trace lets an experiment replay *exactly* the same
//! reference stream through many hardware configurations (the paper's
//! methodology compares configurations on identical applications). The
//! encoding is delta/varint based: one flag byte per instruction plus a
//! zig-zag varint address delta, which compresses typical traces to a few
//! bytes per instruction.

use crate::addr::Addr;
use crate::instr::{Instr, MemOp, MemRef};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes of the on-disk trace format.
const FILE_MAGIC: &[u8; 4] = b"UTT1";

const FLAG_HAS_MEM: u8 = 0b0000_0001;
const FLAG_STORE: u8 = 0b0000_0010;
const FLAG_SEQ_PC: u8 = 0b0000_0100;
const SIZE_SHIFT: u8 = 3;

/// Errors produced when decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended in the middle of a record.
    Truncated,
    /// A varint ran past its maximum length.
    VarintOverflow,
    /// An operand size field was not a valid power of two.
    BadSize(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("trace buffer truncated mid-record"),
            DecodeError::VarintOverflow => f.write_str("varint exceeds 64 bits"),
            DecodeError::BadSize(s) => write!(f, "invalid operand size code {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An encoded, replayable trace.
///
/// # Example
///
/// ```
/// use simtrace::encode::TraceBuffer;
/// use simtrace::{Instr, MemRef};
///
/// let trace = vec![
///     Instr::plain(0u64),
///     Instr::mem(4u64, MemRef::load(0x1000u64, 4)),
/// ];
/// let buf = TraceBuffer::encode(trace.iter().copied());
/// let decoded: Vec<Instr> = buf.iter().collect::<Result<_, _>>()?;
/// assert_eq!(decoded, trace);
/// # Ok::<(), simtrace::encode::DecodeError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    data: Bytes,
    len: u64,
}

impl TraceBuffer {
    /// Encodes a trace into a buffer.
    pub fn encode(trace: impl IntoIterator<Item = Instr>) -> Self {
        let mut data = BytesMut::new();
        let mut len = 0u64;
        let mut prev_pc = 0u64;
        let mut prev_addr = 0u64;
        for instr in trace {
            let mut flags = 0u8;
            let seq =
                instr.pc.raw() == prev_pc.wrapping_add(4) || (len == 0 && instr.pc.raw() == 0);
            if seq {
                flags |= FLAG_SEQ_PC;
            }
            if let Some(m) = instr.mem {
                flags |= FLAG_HAS_MEM;
                if m.op.is_store() {
                    flags |= FLAG_STORE;
                }
                // size is a power of two ≤ 128; store its log2 in 3 bits.
                let code = m.size.max(1).trailing_zeros() as u8;
                flags |= code << SIZE_SHIFT;
            }
            data.put_u8(flags);
            if !seq {
                put_varint(&mut data, instr.pc.raw());
            }
            if let Some(m) = instr.mem {
                let delta = m.addr.raw() as i64 - prev_addr as i64;
                put_varint(&mut data, zigzag(delta));
                prev_addr = m.addr.raw();
            }
            prev_pc = instr.pc.raw();
            len += 1;
        }
        TraceBuffer {
            data: data.freeze(),
            len,
        }
    }

    /// Number of instructions in the buffer.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the buffer holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Iterates over the decoded instructions.
    pub fn iter(&self) -> Iter {
        Iter {
            data: self.data.clone(),
            prev_pc: 0,
            prev_addr: 0,
            first: true,
        }
    }

    /// Writes the buffer to a writer with a small self-describing header
    /// (magic, instruction count, byte length).
    ///
    /// Remember that a `&mut W` also implements `Write`, so a mutable
    /// reference to a file can be passed here.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(FILE_MAGIC)?;
        w.write_all(&self.len.to_le_bytes())?;
        w.write_all(&(self.data.len() as u64).to_le_bytes())?;
        w.write_all(&self.data)
    }

    /// Reads a buffer previously produced by [`TraceBuffer::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic or truncated payload, and
    /// propagates reader I/O errors.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != FILE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a trace file",
            ));
        }
        let mut word = [0u8; 8];
        r.read_exact(&mut word)?;
        let len = u64::from_le_bytes(word);
        r.read_exact(&mut word)?;
        let byte_len = u64::from_le_bytes(word) as usize;
        let mut data = vec![0u8; byte_len];
        r.read_exact(&mut data)?;
        Ok(TraceBuffer {
            data: Bytes::from(data),
            len,
        })
    }

    /// Writes the buffer to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        self.write_to(std::fs::File::create(path)?)
    }

    /// Loads a buffer from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

/// Decoding iterator produced by [`TraceBuffer::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    data: Bytes,
    prev_pc: u64,
    prev_addr: u64,
    first: bool,
}

impl Iterator for Iter {
    type Item = Result<Instr, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.data.has_remaining() {
            return None;
        }
        let flags = self.data.get_u8();
        let pc = if flags & FLAG_SEQ_PC != 0 {
            if self.first {
                0
            } else {
                self.prev_pc.wrapping_add(4)
            }
        } else {
            match get_varint(&mut self.data) {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            }
        };
        let mem = if flags & FLAG_HAS_MEM != 0 {
            let delta = match get_varint(&mut self.data) {
                Ok(v) => unzigzag(v),
                Err(e) => return Some(Err(e)),
            };
            let addr = (self.prev_addr as i64).wrapping_add(delta) as u64;
            self.prev_addr = addr;
            let size_code = flags >> SIZE_SHIFT;
            if size_code > 7 {
                return Some(Err(DecodeError::BadSize(size_code)));
            }
            let op = if flags & FLAG_STORE != 0 {
                MemOp::Store
            } else {
                MemOp::Load
            };
            Some(MemRef {
                op,
                addr: Addr::new(addr),
                size: 1 << size_code,
            })
        } else {
            None
        };
        self.prev_pc = pc;
        self.first = false;
        Some(Ok(Instr {
            pc: Addr::new(pc),
            mem,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{PatternTrace, TraceShape, WorkingSet};

    fn round_trip(trace: Vec<Instr>) {
        let buf = TraceBuffer::encode(trace.iter().copied());
        assert_eq!(buf.len(), trace.len() as u64);
        let decoded: Vec<Instr> = buf.iter().map(|r| r.expect("decode")).collect();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_round_trip() {
        round_trip(vec![]);
        assert!(TraceBuffer::encode(std::iter::empty()).is_empty());
    }

    #[test]
    fn basic_round_trip() {
        round_trip(vec![
            Instr::plain(0u64),
            Instr::mem(4u64, MemRef::load(0x1000u64, 4)),
            Instr::mem(8u64, MemRef::store(0x0FF8u64, 8)),
            Instr::plain(0x40u64), // branch: non-sequential pc
            Instr::mem(0x44u64, MemRef::load(0xFFFF_FFFF_0000u64, 1)),
        ]);
    }

    #[test]
    fn generated_trace_round_trip() {
        let trace: Vec<Instr> = PatternTrace::new(
            WorkingSet::new(0x4000, 8192, 0.3, 4),
            TraceShape::default(),
            5,
        )
        .take(5_000)
        .collect();
        round_trip(trace);
    }

    #[test]
    fn encoding_is_compact_for_sequential_code() {
        let trace: Vec<Instr> = (0..1000u64).map(|i| Instr::plain(i * 4)).collect();
        let buf = TraceBuffer::encode(trace.iter().copied());
        // Pure sequential non-memory instructions cost one byte each.
        assert_eq!(buf.byte_len(), 1000);
    }

    #[test]
    fn truncated_buffer_reports_error() {
        let buf = TraceBuffer::encode(vec![Instr::mem(0x100u64, MemRef::load(0x12345u64, 4))]);
        let mut raw = buf.data.to_vec();
        raw.truncate(raw.len() - 1);
        let broken = TraceBuffer {
            data: Bytes::from(raw),
            len: 1,
        };
        let results: Vec<_> = broken.iter().collect();
        assert!(results.iter().any(|r| r.is_err()));
    }

    #[test]
    fn file_round_trip() {
        let trace: Vec<Instr> =
            PatternTrace::new(WorkingSet::new(0, 4096, 0.4, 4), TraceShape::default(), 8)
                .take(2_000)
                .collect();
        let buf = TraceBuffer::encode(trace.iter().copied());
        let path = std::env::temp_dir().join("simtrace_file_rt/trace.utt");
        buf.save(&path).unwrap();
        let loaded = TraceBuffer::load(&path).unwrap();
        assert_eq!(loaded, buf);
        let decoded: Vec<Instr> = loaded.iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, trace);
        std::fs::remove_dir_all(std::env::temp_dir().join("simtrace_file_rt")).unwrap();
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = TraceBuffer::read_from(&b"NOPE\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_rejects_truncation() {
        let buf = TraceBuffer::encode(vec![Instr::plain(0u64); 100]);
        let mut bytes = Vec::new();
        buf.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(TraceBuffer::read_from(&bytes[..]).is_err());
    }

    #[test]
    fn varint_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
