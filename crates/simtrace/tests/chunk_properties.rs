//! Property tests for the chunked-generation determinism contract
//! (`simtrace::chunk` module docs): for every SPEC92 proxy program,
//! arbitrary chunk sizes and arbitrary resume points, the chunked
//! stream is bit-identical to the monolithic one. The streaming
//! pipeline (`bench::stream`) and the `REPRO_STREAM_CHUNK` knob lean on
//! exactly these properties.

use proptest::prelude::*;
use simtrace::chunk::{spec92_chunks, ChunkedTrace};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;

fn program() -> impl Strategy<Value = Spec92Program> {
    (0..Spec92Program::ALL.len()).prop_map(|i| Spec92Program::ALL[i])
}

fn mono(program: Spec92Program, seed: u64, len: usize) -> Vec<Instr> {
    spec92_trace(program, seed).take(len).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concatenating the chunks reproduces the monolithic trace exactly,
    /// whatever the chunk size — including sizes larger than the trace.
    #[test]
    fn chunked_is_bit_identical_to_monolithic(
        program in program(),
        seed in any::<u64>(),
        len in 1usize..3_000,
        chunk_len in 1usize..4_096,
    ) {
        let want = mono(program, seed, len);
        let mut got = Vec::with_capacity(len);
        spec92_chunks(program, seed, len, chunk_len)
            .for_each_chunk(|c| got.extend_from_slice(c));
        prop_assert_eq!(got, want);
    }

    /// Every chunk respects the size bound, only the final chunk may be
    /// short, and the produced counter accounts for every instruction.
    #[test]
    fn chunk_sizes_and_accounting_hold(
        program in program(),
        seed in any::<u64>(),
        len in 1usize..3_000,
        chunk_len in 1usize..512,
    ) {
        let mut chunks = spec92_chunks(program, seed, len, chunk_len);
        let mut buf = Vec::new();
        let mut sizes = Vec::new();
        while chunks.next_chunk_into(&mut buf) {
            sizes.push(buf.len());
        }
        prop_assert_eq!(sizes.iter().sum::<usize>(), len);
        prop_assert_eq!(chunks.produced(), len as u64);
        let (last, full) = sizes.split_last().expect("len >= 1 gives a chunk");
        prop_assert!(full.iter().all(|&s| s == chunk_len), "only the last chunk may be short");
        prop_assert!(*last >= 1 && *last <= chunk_len);
    }

    /// A resume point is derivable from `(seed, skip)`: `start_at`
    /// continues with exactly the instructions a drained prefix would
    /// have been followed by.
    #[test]
    fn resume_points_are_derivable(
        program in program(),
        seed in any::<u64>(),
        len in 2usize..3_000,
        chunk_len in 1usize..512,
        skip_frac in 0.0f64..1.0,
    ) {
        let skip = ((len as f64 * skip_frac) as u64).min(len as u64 - 1);
        let want = mono(program, seed, len);
        let mut resumed = ChunkedTrace::start_at(
            spec92_trace(program, seed).take(len),
            chunk_len,
            skip,
        );
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while resumed.next_chunk_into(&mut buf) {
            got.extend_from_slice(&buf);
        }
        prop_assert_eq!(&got[..], &want[skip as usize..]);
    }

    /// Changing the chunk size between chunks never changes the stream,
    /// only its partitioning.
    #[test]
    fn repartitioning_mid_stream_is_invisible(
        program in program(),
        seed in any::<u64>(),
        len in 1usize..3_000,
        first_len in 1usize..512,
        second_len in 1usize..512,
    ) {
        let want = mono(program, seed, len);
        let mut chunks = spec92_chunks(program, seed, len, first_len);
        let mut got = Vec::new();
        let mut buf = Vec::new();
        if chunks.next_chunk_into(&mut buf) {
            got.extend_from_slice(&buf);
        }
        chunks.set_chunk_len(second_len);
        while chunks.next_chunk_into(&mut buf) {
            got.extend_from_slice(&buf);
        }
        prop_assert_eq!(got, want);
    }
}
