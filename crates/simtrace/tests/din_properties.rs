//! Property tests for the `.din` streaming parser: malformed input of
//! any shape must surface as a typed [`DinError`], never a panic —
//! hostile or truncated trace files degrade a run, they don't abort it.

use proptest::prelude::*;
use simtrace::din::{DinError, DinReader};
use std::io::BufReader;

/// Drains the parser over arbitrary bytes; the property under test is
/// simply that this returns (no panic, no hang) with every record
/// either parsed or a typed error.
fn drain(bytes: &[u8]) -> (usize, usize) {
    let mut ok = 0;
    let mut err = 0;
    for item in DinReader::new(BufReader::new(bytes)) {
        match item {
            Ok(_) => ok += 1,
            Err(e) => {
                // Every error renders a message naming the cause.
                assert!(!e.to_string().is_empty());
                err += 1;
            }
        }
    }
    (ok, err)
}

/// Fragments that stress the tokenizer: valid records, junk labels,
/// overlong hex, NULs, bare tokens, comments, blank space.
fn line_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..3, any::<u64>()).prop_map(|(l, a)| format!("{l} {a:x}")),
        (any::<u8>(), any::<u64>()).prop_map(|(l, a)| format!("{l} {a:x}")),
        any::<u64>().prop_map(|a| format!("9 {a:x}")),
        // 17+ hex digits overflow u64::from_str_radix.
        any::<u64>().prop_map(|a| format!("2 fffffffffffffffff{a:x}")),
        Just("2 0xzz".to_string()),
        Just("justtoken".to_string()),
        Just("# comment".to_string()),
        Just(String::new()),
        Just("   ".to_string()),
        Just("2\u{0}400 12".to_string()),
        Just("\u{0}\u{0}".to_string()),
    ]
}

proptest! {
    /// Arbitrary raw bytes (including invalid UTF-8 and NULs) never
    /// panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        drain(&bytes);
    }

    /// Arbitrary compositions of record-shaped lines never panic, and
    /// well-formed records among them still parse.
    #[test]
    fn line_soup_never_panics(lines in proptest::collection::vec(line_fragment(), 0..40)) {
        let text = lines.join("\n");
        let (ok, err) = drain(text.as_bytes());
        let well_formed = lines.iter().filter(|l| {
            let mut p = l.split_whitespace();
            matches!(
                (p.next(), p.next()),
                (Some("0" | "1" | "2"), Some(a))
                    if u64::from_str_radix(a.trim_start_matches("0x"), 16).is_ok()
            )
        }).count();
        prop_assert!(ok >= well_formed, "parsed {ok} (+{err} errors), expected at least {well_formed}");
    }
}

#[test]
fn known_bad_inputs_are_typed_errors() {
    let parse = |text: &[u8]| -> Result<Vec<_>, DinError> {
        DinReader::new(BufReader::new(text)).collect()
    };
    // Label out of range.
    assert!(matches!(
        parse(b"7 400\n").unwrap_err(),
        DinError::BadLabel { line: 1, .. }
    ));
    // Hex overflow: 17 f's exceed u64.
    assert!(matches!(
        parse(b"2 fffffffffffffffff\n").unwrap_err(),
        DinError::Malformed { line: 1, .. }
    ));
    // Missing address token.
    assert!(matches!(
        parse(b"2\n").unwrap_err(),
        DinError::Malformed { line: 1, .. }
    ));
    // Embedded NUL bytes are not whitespace and corrupt the tokens.
    assert!(parse(b"2\x00400\n").is_err());
    // Invalid UTF-8 surfaces as an I/O error from the line reader.
    assert!(matches!(
        parse(b"2 400\n\xff\xfe\n").unwrap_err(),
        DinError::Io(_)
    ));
}
