//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the two trait names the workspace derives everywhere, as pure
//! markers, together with no-op derive macros re-exported from
//! [`serde_derive`]. Nothing in the workspace performs actual
//! serialization (there is no serde_json/bincode), so marker traits are
//! a faithful substitute: `#[derive(Serialize, Deserialize)]` compiles
//! and the bound `T: Serialize` is satisfiable, which is all the code
//! relies on.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker replacement for `serde::Serialize`.
pub trait Serialize {}

/// Marker replacement for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker replacement for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
