#!/usr/bin/env bash
# CI gate: tier-1 verification plus lint, exactly what a PR must pass.
#
#   ./ci.sh          tier-1 (release build + full test suite) + fmt +
#                    clippy + manifest (committed results/ hash-verified
#                    against a fresh parallel suite run) + faults (canned
#                    fault plan degrades the suite instead of killing it)
#                    + stream (1 M-instruction streaming smoke with an
#                    RSS ceiling and a materialised oracle comparison)
#                    + analytic (closed-form backend bit-exact on FA LRU,
#                    within tolerance on the comparison grid)
#                    + chaos (armed serve-path fault plan: sheds are
#                    deterministic and survivable, no worker dies, and
#                    the post-chaos canned answer is byte-identical to
#                    a clean server's)
#                    + workloads (every example spec validates, builtin
#                    specs keep their pinned content hashes and stay
#                    bit-identical to the legacy constructors)
#   ./ci.sh bench    additionally regenerate BENCH_sweep.json (figure-6
#                    grid), BENCH_phi.json (figure-1 timeline engine),
#                    BENCH_stream.json (5 M-instruction chunked
#                    pipeline), BENCH_analytic.json (closed-form
#                    miss-ratio backend) and BENCH_serve.json (query
#                    serving path: hot/cold qps, keep-alive speedup,
#                    overload tail latency + shed rate) from the
#                    criterion benches (slow; perf-sensitive PRs)
#                    + serve (tradeoff-server smoke: canned queries over
#                    HTTP byte-match the CLI, /stats proves memoisation,
#                    clean shutdown)
#   ./ci.sh manifest run only the manifest staleness check
#   ./ci.sh faults   run only the fault-injection degradation check
#   ./ci.sh stream   run only the streaming smoke
#   ./ci.sh analytic run only the analytic-backend accuracy gate
#   ./ci.sh serve    run only the query-server smoke
#   ./ci.sh chaos    run only the query-server chaos gate (armed
#                    REPRO_FAULTS plan: forced accept sheds ridden out
#                    by client retries, a slow read inside the budget, a
#                    contained dispatch panic, a watchdog-abandoned
#                    hang, and a 6x overload flood — the pool must keep
#                    its size and a post-chaos canned query must be
#                    byte-identical to a clean server's answer)
#   ./ci.sh workloads run only the workload-spec gate (every example
#                    spec in workloads/ validates; the six builtin
#                    example files hash to the ids the registry serves;
#                    builtins stay bit-identical to the legacy
#                    spec92_trace constructors)
#
# Exit codes: 0 green, 1 failure, 2 usage, 3 manifest drift,
# 4 chaos worker death (the pool shrank), 5 chaos shed-policy drift
# (an armed fault was not observed by the overload counters, or the
# post-chaos answer changed).
set -euo pipefail
cd "$(dirname "$0")"

manifest_check() {
    echo "==> manifest: regenerate artifacts and hash-verify results/"
    local tmp
    tmp="$(mktemp -d)"
    # The suite document and every CSV must be byte-identical however
    # they are produced: regenerate with the parallel scheduler into a
    # scratch directory, then hash the committed results/ against the
    # fresh manifest. Any drift — stale committed artifact or lost
    # determinism — fails the build.
    REPRO_RESULTS_DIR="$tmp" REPRO_JOBS=4 \
        cargo run --release -q -p bench --bin run_all > /dev/null
    cargo run --release -q --bin tradeoff-cli -- experiments verify \
        --results-dir results --manifest "$tmp/manifest.json"
    rm -rf "$tmp"
}

faults_check() {
    echo "==> faults: canned fault plan must degrade, not abort, the suite"
    local tmp out status
    tmp="$(mktemp -d)"
    # One panic (fig2) and one hang caught by the watchdog (victim): the
    # keep-going parallel run must complete the other 26 experiments,
    # record per-experiment statuses in the manifest, and exit nonzero.
    set +e
    REPRO_FAULTS="run:fig2:panic,run:victim:delay60000" \
    REPRO_EXP_TIMEOUT=2 REPRO_INSTRUCTIONS=2000 \
        cargo run --release -q -p bench --bin exp -- run \
        --keep-going --jobs 4 --results-dir "$tmp" > "$tmp/stdout.txt" 2> "$tmp/stderr.txt"
    status=$?
    set -e
    [[ "$status" -ne 0 ]] || { echo "FAIL: degraded run exited 0"; exit 1; }
    grep -q '"status": "failed"' "$tmp/manifest.json" \
        || { echo "FAIL: manifest missing failed status"; exit 1; }
    grep -q '"status": "timed-out"' "$tmp/manifest.json" \
        || { echo "FAIL: manifest missing timed-out status"; exit 1; }
    out="$(grep -c '"status": "ok"' "$tmp/manifest.json")"
    [[ "$out" -eq 26 ]] || { echo "FAIL: expected 26 ok statuses, got $out"; exit 1; }
    grep -q "Suite failures" "$tmp/stdout.txt" \
        || { echo "FAIL: suite document missing failure section"; exit 1; }
    echo "    degraded run: exit $status, 26 ok / 1 failed / 1 timed-out"
    rm -rf "$tmp"
}

analytic_check() {
    echo "==> analytic: closed-form backend exactness and tolerance gates"
    # Gate 1: fully-associative LRU answers must be bit-equal to live
    # Cache replay (Mattson inclusion is exact, not approximate).
    # Gate 2: the binomial set-conflict model must stay within the
    # pinned tolerance of the stack-distance sweeps across the whole
    # comparison grid, all six proxies. The binary exits nonzero on any
    # violation.
    cargo run --release -q -p bench --bin analytic_check
}

stream_check() {
    echo "==> stream: 1 M-instruction chunked pipeline, bounded RSS + oracle"
    # The streamed folds must stay byte-identical to the materialise-
    # then-scan oracle, and peak RSS must stay far below the 24 MB a
    # materialised 1 M-instruction trace would pin (the binary checks
    # VmHWM before its oracle pass materialises anything).
    cargo run --release -q -p bench --bin stream_smoke --         --instructions 1000000 --rss-limit-mb 64
}

serve_check() {
    echo "==> serve: tradeoff-server smoke (byte parity, memoisation, shutdown)"
    local tmp addr req local_out remote_out server_pid
    tmp="$(mktemp -d)"
    cargo run --release -q --bin tradeoff-server -- \
        --addr 127.0.0.1:0 --threads 2 --addr-file "$tmp/addr" \
        2> "$tmp/server.log" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmp/addr" ]] && break
        kill -0 "$server_pid" 2>/dev/null \
            || { echo "FAIL: server died on startup"; cat "$tmp/server.log"; exit 1; }
        sleep 0.1
    done
    [[ -s "$tmp/addr" ]] || { echo "FAIL: server never bound"; exit 1; }
    addr="$(cat "$tmp/addr")"
    req='{"query":"simulate","program":"ear","instructions":50000,"stall":"bnl3"}'
    # The same request locally and over HTTP must be byte-identical —
    # both are one tradeoff::api::dispatch call. Asking twice proves the
    # store memoises across requests: one miss, then a hit.
    local_out="$(cargo run --release -q --bin tradeoff-cli -- query --json "$req")"
    remote_out="$(cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --json "$req")"
    [[ "$local_out" == "$remote_out" ]] \
        || { echo "FAIL: CLI and server answers differ"; exit 1; }
    remote_out="$(cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --json "$req")"
    [[ "$local_out" == "$remote_out" ]] \
        || { echo "FAIL: repeated query changed its answer"; exit 1; }
    cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --get stats \
        > "$tmp/stats.json"
    grep -q '"timeline_misses":1' "$tmp/stats.json" \
        || { echo "FAIL: expected one extraction, got $(cat "$tmp/stats.json")"; exit 1; }
    grep -q '"timeline_hits":1' "$tmp/stats.json" \
        || { echo "FAIL: repeat query missed the memo: $(cat "$tmp/stats.json")"; exit 1; }
    cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --shutdown > /dev/null
    wait "$server_pid" \
        || { echo "FAIL: server exited nonzero after graceful shutdown"; exit 1; }
    echo "    serve smoke: byte parity, 1 miss + 1 hit, clean shutdown"
    rm -rf "$tmp"
}

chaos_check() {
    echo "==> chaos: armed faults must shed, contain, and recover (4 = worker death, 5 = policy drift)"
    local tmp addr req clean_out post_out server_pid out status started elapsed sheds served p
    tmp="$(mktemp -d)"
    req='{"query":"simulate","program":"ear","instructions":50000,"stall":"bnl3"}'

    # Reference answer: the canned query on a clean, fault-free server.
    cargo run --release -q --bin tradeoff-server -- \
        --addr 127.0.0.1:0 --threads 2 --addr-file "$tmp/addr" \
        2> "$tmp/clean.log" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmp/addr" ]] && break
        kill -0 "$server_pid" 2>/dev/null \
            || { echo "FAIL: clean server died on startup"; cat "$tmp/clean.log"; exit 1; }
        sleep 0.1
    done
    [[ -s "$tmp/addr" ]] || { echo "FAIL: clean server never bound"; exit 1; }
    addr="$(cat "$tmp/addr")"
    clean_out="$(cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --json "$req")"
    cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --shutdown > /dev/null
    wait "$server_pid" || { echo "FAIL: clean server exited nonzero"; exit 1; }
    rm -f "$tmp/addr"

    # Chaos server: the plan arms two forced accept sheds, one slow
    # first read, one dispatch panic and one dispatch hang, in that
    # order; the overload flood below needs no fault at all, just a
    # tight queue watermark on two workers.
    REPRO_FAULTS="accept:serve:io:2,read:serve:delay400:1,dispatch:serve:panic:1,dispatch:serve:delay60000:1" \
    cargo run --release -q --bin tradeoff-server -- \
        --addr 127.0.0.1:0 --threads 2 --queue 2 \
        --request-timeout 1 --idle-timeout 2 --addr-file "$tmp/addr" \
        2> "$tmp/chaos.log" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmp/addr" ]] && break
        kill -0 "$server_pid" 2>/dev/null \
            || { echo "FAIL: chaos server died on startup"; cat "$tmp/chaos.log"; exit 1; }
        sleep 0.1
    done
    [[ -s "$tmp/addr" ]] || { echo "FAIL: chaos server never bound"; exit 1; }
    addr="$(cat "$tmp/addr")"

    # 1. Client retries ride out both forced accept sheds (503 +
    #    Retry-After), then the slow read burns 400 ms of the 1 s
    #    budget — and the request still answers.
    out="$(cargo run --release -q --bin tradeoff-cli -- \
        query --server "$addr" --get stats --retries 4)" \
        || { echo "FAIL: retries did not ride out the accept sheds"; exit 1; }
    grep -q '"sheds_accept":2' <<< "$out" \
        || { echo "FAIL: expected 2 accept sheds before the first answer: $out"; exit 5; }

    # 2. A poisoned query unwinds inside the dispatch thread: a typed
    #    500, and the worker pool is untouched (checked in step 5).
    set +e
    out="$(cargo run --release -q --bin tradeoff-cli -- \
        query --server "$addr" --json "$req" --retries 0 2>&1)"
    status=$?
    set -e
    [[ "$status" -eq 1 ]] || { echo "FAIL: panicking query must exit 1, got $status: $out"; exit 1; }
    grep -q 'panicked' <<< "$out" \
        || { echo "FAIL: expected a contained panic, got: $out"; exit 1; }

    # 3. A hung handler is abandoned by the watchdog at the 1 s
    #    deadline: 504 in seconds, not the 60 s the hang would take.
    started=$SECONDS
    set +e
    out="$(cargo run --release -q --bin tradeoff-cli -- \
        query --server "$addr" --json "$req" --retries 0 2>&1)"
    status=$?
    set -e
    elapsed=$(( SECONDS - started ))
    [[ "$status" -eq 1 ]] || { echo "FAIL: hung query must exit 1, got $status: $out"; exit 1; }
    grep -q 'deadline-exceeded' <<< "$out" \
        || { echo "FAIL: expected deadline-exceeded, got: $out"; exit 1; }
    [[ "$elapsed" -le 15 ]] \
        || { echo "FAIL: watchdog took ${elapsed}s against a 1 s deadline"; exit 1; }

    # 4. Overload flood: 12 concurrent heavy simulates on 2 workers
    #    with a queue watermark of 2. The shed policy must act (503
    #    overloaded), and the backlog that fits must still be served.
    local pids=()
    for i in $(seq 0 11); do
        cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --retries 0 \
            --json "{\"query\":\"simulate\",\"program\":\"ear\",\"instructions\":$((3000000 + 977 * i))}" \
            > /dev/null 2> "$tmp/flood.$i.err" &
        pids+=($!)
    done
    served=0
    for p in "${pids[@]}"; do
        if wait "$p"; then served=$((served + 1)); fi
    done
    sheds="$(cat "$tmp"/flood.*.err | grep -c 'overloaded' || true)"
    [[ "$sheds" -ge 1 ]] \
        || { echo "FAIL: 6x overload flood shed nothing (served $served/12)"; exit 5; }
    [[ "$served" -ge 1 ]] \
        || { echo "FAIL: overload flood served nothing"; cat "$tmp"/flood.*.err; exit 5; }

    # 5. /stats invariants: nobody died, and every armed fault left a
    #    mark on the policy counters.
    out="$(cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --get stats)"
    grep -q '"pool":{"size":2,"alive":2}' <<< "$out" \
        || { echo "FAIL: worker death — the pool shrank: $out"; exit 4; }
    grep -q '"panics_contained":1' <<< "$out" \
        || { echo "FAIL: panic not contained or not counted: $out"; exit 5; }
    grep -Eq '"deadline_timeouts":[1-9]' <<< "$out" \
        || { echo "FAIL: watchdog timeout not counted: $out"; exit 5; }
    grep -q '"sheds_accept":2' <<< "$out" \
        || { echo "FAIL: accept-shed count drifted: $out"; exit 5; }
    grep -Eq '"sheds_dispatch":[1-9]' <<< "$out" \
        || { echo "FAIL: overload flood left no dispatch sheds: $out"; exit 5; }

    # 6. Post-chaos, the canned query answers byte-identically to the
    #    clean server: chaos may cost requests, never answers.
    post_out="$(cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --json "$req")"
    [[ "$post_out" == "$clean_out" ]] \
        || { echo "FAIL: post-chaos answer drifted from the clean server"; exit 5; }

    cargo run --release -q --bin tradeoff-cli -- query --server "$addr" --shutdown > /dev/null
    wait "$server_pid" \
        || { echo "FAIL: chaos server exited nonzero after graceful shutdown"; exit 1; }
    echo "    chaos: 2 sheds ridden out, panic + hang contained, $sheds/12 flood sheds, pool intact, byte-identical recovery"
    rm -rf "$tmp"
}

workloads_check() {
    echo "==> workloads: example specs validate, builtin ids pinned"
    local out id listing
    # Every committed example spec must parse, validate and hash.
    listing="$(cargo run --release -q --bin tradeoff-cli -- workloads list)"
    for f in workloads/*.json; do
        out="$(cargo run --release -q --bin tradeoff-cli -- workloads validate --file "$f")" \
            || { echo "FAIL: invalid spec $f"; exit 1; }
        id="$(sed -nE 's/^valid: .*\(([0-9a-f]{64})\)$/\1/p' <<< "$out")"
        [[ -n "$id" ]] || { echo "FAIL: no content hash for $f: $out"; exit 1; }
        # The six builtin example files are identity-critical: each must
        # hash to the exact id the registry serves for that name, or the
        # committed example has drifted from the memo keys in use.
        case "$f" in
            workloads/nasa7.json|workloads/swm256.json|workloads/wave5.json| \
            workloads/ear.json|workloads/doduc.json|workloads/hydro2d.json)
                grep -q "$id" <<< "$listing" \
                    || { echo "FAIL: $f hash $id not served by the registry"; exit 1; }
                ;;
        esac
    done
    # Builtin specs must compile bit-identically to the legacy
    # spec92_trace constructors, and their content hashes stay pinned.
    cargo test --release -q --test workloads \
        || { echo "FAIL: workload contract tests"; exit 1; }
    echo "    $(ls workloads/*.json | wc -l) specs valid, 6 builtin ids pinned"
}

if [[ "${1:-}" == "manifest" ]]; then
    cargo build --release
    manifest_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "faults" ]]; then
    cargo build --release
    faults_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "stream" ]]; then
    cargo build --release
    stream_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "analytic" ]]; then
    cargo build --release
    analytic_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "serve" ]]; then
    cargo build --release
    serve_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "chaos" ]]; then
    cargo build --release
    chaos_check
    echo "CI green."
    exit 0
fi

if [[ "${1:-}" == "workloads" ]]; then
    cargo build --release
    workloads_check
    echo "CI green."
    exit 0
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo fmt --check"
cargo fmt --check

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

manifest_check
faults_check
stream_check
analytic_check
serve_check
chaos_check
workloads_check

if [[ "${1:-}" == "bench" ]]; then
    echo "==> perf: figure-6 grid sweep benchmark (writes BENCH_sweep.json)"
    cargo bench -p bench --bench sweep
    cat BENCH_sweep.json
    echo "==> perf: figure-1 timeline-engine benchmark (writes BENCH_phi.json)"
    cargo bench -p bench --bench phi
    cat BENCH_phi.json
    echo "==> perf: streaming chunked-pipeline benchmark (writes BENCH_stream.json)"
    cargo bench -p bench --bench stream
    cat BENCH_stream.json
    echo "==> perf: closed-form miss-ratio backend benchmark (writes BENCH_analytic.json)"
    cargo bench -p bench --bench analytic
    cat BENCH_analytic.json
    echo "==> perf: query-server serving-path benchmark (writes BENCH_serve.json)"
    cargo bench --bench serve
    cat BENCH_serve.json
fi

echo "CI green."
