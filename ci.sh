#!/usr/bin/env bash
# CI gate: tier-1 verification plus lint, exactly what a PR must pass.
#
#   ./ci.sh          tier-1 (release build + full test suite) + fmt + clippy
#   ./ci.sh bench    additionally regenerate BENCH_sweep.json (figure-6
#                    grid) and BENCH_phi.json (figure-1 timeline engine)
#                    from the criterion benches (slow; perf-sensitive PRs)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo fmt --check"
cargo fmt --check

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" == "bench" ]]; then
    echo "==> perf: figure-6 grid sweep benchmark (writes BENCH_sweep.json)"
    cargo bench -p bench --bench sweep
    cat BENCH_sweep.json
    echo "==> perf: figure-1 timeline-engine benchmark (writes BENCH_phi.json)"
    cargo bench -p bench --bench phi
    cat BENCH_phi.json
fi

echo "CI green."
