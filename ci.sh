#!/usr/bin/env bash
# CI gate: tier-1 verification plus lint, exactly what a PR must pass.
#
#   ./ci.sh          tier-1 (release build + full test suite) + clippy
#   ./ci.sh bench    additionally regenerate BENCH_sweep.json from the
#                    figure-6 grid benchmark (slow; perf-sensitive PRs)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" == "bench" ]]; then
    echo "==> perf: figure-6 grid sweep benchmark (writes BENCH_sweep.json)"
    cargo bench -p bench --bench sweep
    cat BENCH_sweep.json
fi

echo "CI green."
