//! Trace recording and replay: one reference stream, many machines.
//!
//! The paper's methodology compares *configurations on identical
//! applications*; this example shows the supporting workflow — record a
//! workload once into the compact `.utt` format, then replay the exact
//! same stream through several hardware configurations, including a
//! round-trip through the Dinero `.din` interchange format for use with
//! external tools.
//!
//! Run with `cargo run --release --example trace_replay`.

use simtrace::din::{write_din, DinReader};
use simtrace::encode::TraceBuffer;
use std::io::BufReader;
use unified_tradeoff::prelude::*;

const INSTRUCTIONS: usize = 60_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record the workload once.
    let dir = std::env::temp_dir().join("unified-tradeoff-replay");
    let path = dir.join("wave5.utt");
    let buf = TraceBuffer::encode(spec92_trace(Spec92Program::Wave5, 0x7EA5).take(INSTRUCTIONS));
    buf.save(&path)?;
    println!(
        "recorded {} instructions into {} ({} bytes, {:.2} B/instr)\n",
        buf.len(),
        path.display(),
        buf.byte_len(),
        buf.byte_len() as f64 / buf.len() as f64
    );

    // 2. Replay the identical stream through four configurations.
    let loaded = TraceBuffer::load(&path)?;
    let trace: Vec<Instr> = loaded.iter().collect::<Result<_, _>>()?;
    let mut table = Table::new(["configuration", "cycles", "CPI", "HR", "φ"]);
    let configs: [(&str, StallFeature, u64); 4] = [
        ("full stalling, 32-bit bus", StallFeature::FullStall, 4),
        ("full stalling, 64-bit bus", StallFeature::FullStall, 8),
        ("bus-locked, 32-bit bus", StallFeature::BusLocked, 4),
        ("BNL3, 32-bit bus", StallFeature::BusNotLocked3, 4),
    ];
    for (name, stall, bus) in configs {
        let cfg = CpuConfig::baseline(
            CacheConfig::new(8 * 1024, 32, 2)?,
            MemoryTiming::new(BusWidth::new(bus).map_err(|e| e.to_string())?, 8),
        )
        .with_stall(stall);
        let r = Cpu::new(cfg).run(trace.iter().copied());
        table.row([
            name.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.cpi()),
            format!("{:.2}%", 100.0 * r.dcache.hit_ratio()),
            format!("{:.2}", r.phi()),
        ]);
    }
    println!("identical stream, four machines:");
    println!("{}", table.render());

    // 3. Interchange: export to .din (Dinero's format) and re-import.
    let din_path = dir.join("wave5.din");
    write_din(std::fs::File::create(&din_path)?, trace.iter().copied())?;
    let reimported: Vec<Instr> = DinReader::new(BufReader::new(std::fs::File::open(&din_path)?))
        .collect::<Result<_, _>>()?;
    let refs_out = trace.iter().filter(|i| i.mem.is_some()).count();
    let refs_in = reimported.iter().filter(|i| i.mem.is_some()).count();
    println!(
        "din round trip via {}: {refs_out} data references exported, {refs_in} re-imported.",
        din_path.display()
    );
    assert_eq!(refs_out, refs_in);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
