//! Design-space exploration: pins versus on-chip cache area.
//!
//! Section 5.2 of the paper observes that a designer can spend either
//! package pins (a wider external bus) or silicon (a bigger on-chip
//! cache) for the same performance. This example reproduces that study
//! end to end *with measured hit ratios*: it sweeps cache sizes through
//! the cache simulator on a heavy-tailed (Zipf-reuse) workload — the
//! reuse shape behind Short & Levy's 91 %@8K → 95.5 %@32K curve — then
//! uses the equivalence law to find which (bus width, cache size) pairs
//! tie.
//!
//! Run with `cargo run --release --example design_space`.

use simtrace::gen::{PatternTrace, TraceShape, ZipfWorkingSet};
use unified_tradeoff::prelude::*;

const LINE: u64 = 32;
const BETA: u64 = 8;
const INSTRUCTIONS: usize = 200_000;

/// The study workload: Zipf-reuse gathers over a 2 MB heap with a 30 %
/// store mix — a smooth, realistic hit-ratio-versus-size curve.
fn workload() -> impl Iterator<Item = Instr> {
    let zipf = ZipfWorkingSet::new(0x100_0000, 256 * 1024, 8, 1.15, 0.3);
    PatternTrace::new(zipf, TraceShape::default(), 0x51CA).take(INSTRUCTIONS)
}

/// Measured hit ratio of the workload at one cache size.
fn hit_ratio_at(cache_bytes: u64) -> f64 {
    let cfg = simcache::CacheConfig::new(cache_bytes, LINE, 2).expect("valid cache");
    simcache::explore::measure_dcache(cfg, workload(), INSTRUCTIONS as u64 / 5).hit_ratio()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::new(4.0, LINE as f64, BETA as f64)?;
    let base = SystemConfig::full_stalling(0.5);
    let doubled = base.with_bus_factor(2.0);

    // Measure the workload's hit-ratio curve over cache sizes.
    let sizes: Vec<u64> = (0..8).map(|i| (2 * 1024) << i).collect(); // 2K .. 256K
    let curve: Vec<(u64, f64)> = sizes.iter().map(|&s| (s, hit_ratio_at(s))).collect();

    println!("Measured hit ratios (Zipf-reuse workload, {LINE}B lines, 2-way):");
    let mut t = Table::new(["cache", "hit ratio"]);
    for &(s, hr) in &curve {
        t.row([format!("{}K", s / 1024), format!("{:.2}%", hr * 100.0)]);
    }
    println!("{}", t.render());

    // For each size: the hit ratio a 64-bit-bus design may drop to while
    // matching the 32-bit design of that size — and the smallest
    // measured cache that still clears the bar.
    let mut eq = Table::new([
        "32-bit bus needs",
        "HR",
        "64-bit bus may run at",
        "smallest cache that suffices",
    ]);
    for &(size, hr) in curve.iter().rev() {
        let hr1 = HitRatio::new(hr)?;
        let Ok(hr2) = tradeoff::equiv::equivalent_hit_ratio(&machine, &base, &doubled, hr1) else {
            continue; // hit ratio too low to trade down further
        };
        let cheaper = curve
            .iter()
            .find(|&&(_, h)| h >= hr2.value())
            .map(|&(s, _)| s);
        eq.row([
            format!("{}K", size / 1024),
            format!("{:.2}%", hr * 100.0),
            format!("{hr2}"),
            cheaper.map_or("—".to_string(), |s| format!("{}K", s / 1024)),
        ]);
    }
    println!("Equal-performance design pairs (pins vs silicon):");
    println!("{}", eq.render());

    println!(
        "Reading: each row says a 64-bit-bus part with the smaller cache \
         in the last column performs like a 32-bit-bus part with the cache \
         in the first column — the paper's 8K+64-bit ≡ 32K+32-bit tradeoff, \
         reproduced with simulated hit ratios."
    );
    Ok(())
}
