//! Line-size advisor: pick the optimal cache line for a workload and a
//! memory technology, from *measured* hit ratios.
//!
//! Reproduces the Section 5.4 methodology as a practical tool: sweep line
//! sizes through the cache simulator, then evaluate Smith's criterion
//! (Eq. 16) and the paper's Eq. 19 — which must agree — across a grid of
//! memory technologies, reporting the optimum and the bus-speed range
//! where it stays beneficial.
//!
//! Run with `cargo run --release --example line_size_advisor`.

use tradeoff::linesize::{
    beneficial_bus_speeds, optimal_line_eq19, optimal_line_smith, FillTiming, LineCandidate,
};
use unified_tradeoff::prelude::*;

const CACHE_BYTES: u64 = 16 * 1024;
const INSTRUCTIONS: usize = 120_000;

fn measured_candidates(program: Spec92Program) -> Vec<LineCandidate> {
    let lines = [8u64, 16, 32, 64, 128];
    simcache::explore::hit_ratio_grid(
        &[CACHE_BYTES],
        &lines,
        2,
        || spec92_trace(program, 0xBEEF).take(INSTRUCTIONS),
        INSTRUCTIONS as u64 / 5,
    )
    .expect("valid geometry")
    .into_iter()
    .map(|p| LineCandidate {
        line_bytes: p.line_bytes as f64,
        hit_ratio: HitRatio::new(p.hit_ratio).expect("simulator returns a valid ratio"),
    })
    .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Spec92Program::Nasa7;
    let candidates = measured_candidates(program);

    println!("Measured hit ratios for {program} (16K two-way):");
    let mut t = Table::new(["line", "hit ratio"]);
    for c in &candidates {
        t.row([format!("{} B", c.line_bytes), format!("{}", c.hit_ratio)]);
    }
    println!("{}", t.render());

    // Advise across memory technologies (c = latency cycles incl. hit,
    // β = cycles per 4-byte transfer).
    let mut advice = Table::new(["technology (c, β)", "Smith Eq.16", "paper Eq.19", "agree"]);
    for (c, beta) in [(3.0, 0.5), (5.0, 1.0), (9.0, 2.0), (17.0, 4.0), (33.0, 8.0)] {
        let timing = FillTiming::new(c, beta)?;
        let smith = optimal_line_smith(&timing, 4.0, &candidates)?;
        let ours = optimal_line_eq19(&timing, 4.0, &candidates)?;
        advice.row([
            format!("({c}, {beta})"),
            format!("{} B", smith.line_bytes),
            format!("{} B", ours.line_bytes),
            (smith.line_bytes == ours.line_bytes).to_string(),
        ]);
    }
    println!("Optimal line size by memory technology:");
    println!("{}", advice.render());

    // The beneficial bus-speed range of the largest line (Figure 6's
    // positive region).
    let base = candidates[0];
    let big = *candidates.last().expect("candidates non-empty");
    let betas: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();
    let good = beneficial_bus_speeds(
        |b| 6.0 * b + 1.0,
        &betas,
        4.0,
        base.line_bytes,
        base.hit_ratio,
        big.line_bytes,
        big.hit_ratio,
    )?;
    match (good.first(), good.last()) {
        (Some(lo), Some(hi)) => println!(
            "A {} B line beats {} B for normalized bus speeds β ∈ [{lo}, {hi}] \
             (360ns+15ns/B-class memory).",
            big.line_bytes, base.line_bytes
        ),
        _ => println!(
            "A {} B line never beats {} B on this workload/technology.",
            big.line_bytes, base.line_bytes
        ),
    }
    Ok(())
}
