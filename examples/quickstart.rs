//! Quickstart: price architectural features in hit-ratio currency.
//!
//! Run with `cargo run --example quickstart`.

use unified_tradeoff::prelude::*;

fn main() -> Result<(), TradeoffError> {
    // A 1994-flavoured design point: 32-bit external bus, 32-byte lines,
    // memory cycle of 8 CPU clocks, write-back cache flushing half its
    // fills (the paper's α = 0.5), base hit ratio 95 %.
    let machine = Machine::new(4.0, 32.0, 8.0)?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.95)?;

    println!("Baseline: {machine}, base hit ratio {hr}\n");

    // Price each feature of the paper's unified comparison.
    let features = [
        ("doubling the data bus", base.with_bus_factor(2.0)),
        ("read-bypassing write buffers", base.with_write_buffers()),
        ("pipelined memory (q = 2)", base.with_pipelined_memory(2.0)),
        ("BNL cache (measured φ = 6.8)", base.with_partial_stall(6.8)),
    ];

    let mut table = Table::new(["feature", "worth (hit ratio)", "equal-performance HR"]);
    for (name, enhanced) in features {
        let dhr = tradeoff::equiv::traded_hit_ratio(&machine, &base, &enhanced, hr)?;
        let hr2 = tradeoff::equiv::equivalent_hit_ratio(&machine, &base, &enhanced, hr)?;
        table.row([
            name.to_string(),
            format!("{:+.2} %", 100.0 * dhr),
            format!("{hr2}"),
        ]);
    }
    println!("{}", table.render());

    // The headline law: doubling the bus lets a 95 % cache shrink until
    // it hits somewhere between 2·HR − 1 and 2.5·HR − 1.5.
    let hr2 =
        tradeoff::equiv::equivalent_hit_ratio(&machine, &base, &base.with_bus_factor(2.0), hr)?;
    println!(
        "A 64-bit-bus system with a {hr2} cache performs exactly like the \
         32-bit baseline at {hr} — that is the cache area the wider bus buys back."
    );
    Ok(())
}
