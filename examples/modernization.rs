//! Modernization study: do the paper's 1994 conclusions survive an L2,
//! prefetching and superscalar issue?
//!
//! The reproduction extends the paper's substrate with three
//! mid-90s-and-later features — a second-level cache, tagged next-line
//! prefetching and multiple instruction issue — and asks how the
//! tradeoff landscape shifts. Run with
//! `cargo run --release --example modernization`.

use unified_tradeoff::prelude::*;
use unified_tradeoff::simcpu::{L2Config, Prefetch};

const INSTRUCTIONS: usize = 120_000;
const BETA: u64 = 8;

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    l2: bool,
    prefetch: Prefetch,
    issue_width: u32,
}

const VARIANTS: [Variant; 5] = [
    Variant {
        name: "1994 baseline",
        l2: false,
        prefetch: Prefetch::None,
        issue_width: 1,
    },
    Variant {
        name: "+ next-line prefetch",
        l2: false,
        prefetch: Prefetch::NextLine,
        issue_width: 1,
    },
    Variant {
        name: "+ 128K L2",
        l2: true,
        prefetch: Prefetch::None,
        issue_width: 1,
    },
    Variant {
        name: "+ L2 + prefetch",
        l2: true,
        prefetch: Prefetch::NextLine,
        issue_width: 1,
    },
    Variant {
        name: "+ L2 + prefetch, 4-issue",
        l2: true,
        prefetch: Prefetch::NextLine,
        issue_width: 4,
    },
];

fn simulate(program: Spec92Program, v: Variant) -> SimResult {
    let mut cfg = CpuConfig::baseline(
        CacheConfig::new(8 * 1024, 32, 2).expect("valid L1"),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), BETA),
    )
    .with_prefetch(v.prefetch)
    .with_issue_width(v.issue_width);
    if v.l2 {
        cfg = cfg.with_l2(L2Config::new(
            CacheConfig::new(128 * 1024, 32, 4).expect("valid L2"),
            2,
        ));
    }
    Cpu::new(cfg).run(spec92_trace(program, 0x1994).take(INSTRUCTIONS))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-variant CPI across the proxies.
    let mut t = Table::new(["variant", "nasa7", "swm256", "ear", "doduc", "geomean CPI"]);
    for v in VARIANTS {
        let programs = [
            Spec92Program::Nasa7,
            Spec92Program::Swm256,
            Spec92Program::Ear,
            Spec92Program::Doduc,
        ];
        let cpis: Vec<f64> = programs.iter().map(|&p| simulate(p, v).cpi()).collect();
        let geomean = cpis.iter().map(|c| c.ln()).sum::<f64>() / cpis.len() as f64;
        t.row([
            v.name.to_string(),
            format!("{:.2}", cpis[0]),
            format!("{:.2}", cpis[1]),
            format!("{:.2}", cpis[2]),
            format!("{:.2}", cpis[3]),
            format!("{:.2}", geomean.exp()),
        ]);
    }
    println!("CPI per design variant (8K L1, L=32, D=4, β={BETA}):");
    println!("{}", t.render());

    // What the analytic model says about the shifts.
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.95)?;
    println!("Analytic shifts at HR = 95% (L = 32, D = 4):");
    for (label, beta_eff) in [
        ("flat memory, β_m = 8", 8.0),
        ("behind an L2, β_eff ≈ 3", 3.0),
    ] {
        let machine = Machine::new(4.0, 32.0, beta_eff)?;
        let bus =
            tradeoff::equiv::traded_hit_ratio(&machine, &base, &base.with_bus_factor(2.0), hr)?;
        let pipe = tradeoff::equiv::traded_hit_ratio(
            &machine,
            &base,
            &base.with_pipelined_memory(2.0),
            hr,
        )?;
        let winner = if pipe > bus {
            "pipelining wins"
        } else {
            "the bus wins"
        };
        println!(
            "  · {label}: doubling bus {:+.2}%, pipelined memory {:+.2}% — {winner}.",
            100.0 * bus,
            100.0 * pipe
        );
    }
    println!(
        "  · The pipelining crossover sits at β* = {:.2}; an L2 pushes the effective\n\
         \u{20}   memory cycle below it, flipping the paper's large-β_m recommendation.",
        tradeoff::crossover::pipelined_vs_double_bus(8.0, 2.0).expect("L/D = 8 crosses")
    );
    let machine = Machine::new(4.0, 32.0, BETA as f64)?;
    for w in [1u32, 4] {
        let dhr = tradeoff::multiissue::traded_hit_ratio_w(
            &machine,
            &base,
            &base.with_bus_factor(2.0),
            hr,
            w,
        )?;
        println!(
            "  · at issue width {w} the bus trades {:+.3}% — hit ratio grows more precious\n\
             \u{20}   as issue widens, the multi-issue analogue of Figure 2's falling curves.",
            100.0 * dhr
        );
    }
    println!(
        "\nConclusion: the methodology ports cleanly — each added latency-hiding layer\n\
         moves the design point along the paper's own curves, and the simulator and\n\
         model agree at every step."
    );
    Ok(())
}
