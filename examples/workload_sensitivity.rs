//! Workload sensitivity: measure `{HR, α, φ}` per program and rank
//! features per workload.
//!
//! The paper's figures use SPEC92 *averages*; this example shows what the
//! methodology says per program — vectorizable codes (high α, regular
//! miss spacing) price features differently from irregular ones.
//!
//! Run with `cargo run --release --example workload_sensitivity`.

use unified_tradeoff::prelude::*;

const INSTRUCTIONS: usize = 120_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timing = MemoryTiming::new(BusWidth::new(4).map_err(|e| e.to_string())?, 8);
    let dcache = CacheConfig::new(8 * 1024, 32, 2)?;

    let mut profile_table = Table::new([
        "program",
        "HR",
        "α (measured)",
        "φ(BNL1)",
        "φ(BNL3)",
        "CPI (FS)",
    ]);
    let mut ranking_table = Table::new(["program", "best feature", "2nd", "3rd"]);

    for program in Spec92Program::ALL {
        // Measure the full profile under three stalling features.
        let run = |stall: StallFeature| {
            Cpu::new(CpuConfig::baseline(dcache, timing).with_stall(stall))
                .run(spec92_trace(program, 0xFEED).take(INSTRUCTIONS))
        };
        let fs = run(StallFeature::FullStall);
        let bnl1 = run(StallFeature::BusNotLocked1);
        let bnl3 = run(StallFeature::BusNotLocked3);

        profile_table.row([
            program.to_string(),
            format!("{:.2}%", 100.0 * fs.dcache.hit_ratio()),
            format!("{:.3}", fs.alpha()),
            format!("{:.2}", bnl1.phi()),
            format!("{:.2}", bnl3.phi()),
            format!("{:.3}", fs.cpi()),
        ]);

        // Feed the measured numbers into the analytic ranking.
        let machine = Machine::new(4.0, 32.0, 8.0)?;
        let base = SystemConfig::full_stalling(fs.alpha().clamp(0.0, 1.0));
        let hr = HitRatio::new(fs.dcache.hit_ratio())?;
        let candidates =
            tradeoff::ranking::paper_candidates(&base, bnl1.phi().clamp(1.0, 8.0), 2.0);
        let ranked = tradeoff::ranking::rank_features(&machine, &base, hr, &candidates)?;
        ranking_table.row([
            program.to_string(),
            format!("{}", ranked[0]),
            format!("{}", ranked[1]),
            format!("{}", ranked[2]),
        ]);
    }

    println!("Measured application profiles (8K 2-way, L=32, D=4, β=8):");
    println!("{}", profile_table.render());
    println!("Feature ranking per workload (hit ratio each feature is worth):");
    println!("{}", ranking_table.render());
    Ok(())
}
