//! Serving-path benchmark: queries/s hot (memoised store) versus cold
//! (first extraction), keep-alive versus connection-per-request, and
//! tail latency under a 2× overload with the shed rate — the ROADMAP's
//! `BENCH_serve.json` item.
//!
//! Two in-process servers are measured: a throughput server with the
//! default overload policy, and an overload server squeezed to two
//! workers with a zero queue watermark fed by four closed-loop clients
//! (2× the worker count) issuing distinct simulate queries, so every
//! request is real work and the shed policy has to act. Results land in
//! `BENCH_serve.json` at the workspace root; a reduced criterion point
//! tracks the hot keep-alive path run to run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use unified_tradeoff::server::{http_call, http_request, serve, HttpClient, ServerConfig};

/// The hot-path query: one timeline extraction on first sight, memo
/// hits afterwards.
const SIMULATE: &str =
    r#"{"query":"simulate","program":"ear","instructions":50000,"stall":"bnl3"}"#;

/// Requests per throughput leg.
const HOT_REQUESTS: usize = 200;

/// Overload shape: OVERLOAD_CLIENTS closed-loop clients on
/// OVERLOAD_THREADS workers — a 2× offered load.
const OVERLOAD_THREADS: usize = 2;
const OVERLOAD_CLIENTS: usize = 4;
const OVERLOAD_REQUESTS_PER_CLIENT: usize = 25;

/// Spawns an in-process server on an ephemeral port; returns its
/// address and the serving thread (joined after `POST /shutdown`).
fn spawn(tag: &str, mut cfg: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let dir =
        std::env::temp_dir().join(format!("tradeoff_bench_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.addr_file = Some(addr_file.clone());
    let handle = std::thread::spawn(move || serve(&cfg).expect("bench server runs"));
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if text.trim().parse::<SocketAddr>().is_ok() {
                break text.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "bench server never came up");
        std::thread::sleep(Duration::from_millis(5));
    };
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http_call(addr, "POST", "/shutdown", None).expect("shutdown call");
    assert_eq!(status, 200);
    handle.join().expect("bench server joins");
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

struct Leg {
    requests: usize,
    qps: f64,
    mean_micros: f64,
}

fn timed_leg(requests: usize, mut call: impl FnMut()) -> Leg {
    let started = Instant::now();
    for _ in 0..requests {
        call();
    }
    let secs = started.elapsed().as_secs_f64();
    Leg {
        requests,
        qps: requests as f64 / secs,
        mean_micros: 1e6 * secs / requests as f64,
    }
}

fn serve_bench(c: &mut Criterion) {
    // ---- Throughput server: default policy, uncapped connections.
    let cfg = ServerConfig {
        threads: 4,
        max_requests_per_conn: usize::MAX,
        ..ServerConfig::default()
    };
    let (addr, handle) = spawn("hot", cfg);

    // Cold: the first simulate pays the timeline extraction.
    let started = Instant::now();
    let (status, cold_body) = http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
    let cold_micros = started.elapsed().as_micros() as u64;
    assert_eq!(status, 200, "{cold_body}");

    // Hot, keep-alive: one persistent connection, memo hits throughout.
    let mut client = HttpClient::connect(&addr).unwrap();
    let keepalive = timed_leg(HOT_REQUESTS, || {
        let reply = client.call("POST", "/query", Some(SIMULATE)).unwrap();
        assert_eq!(reply.status, 200);
    });

    // Hot, connection-per-request: same memo hits, fresh TCP each time.
    let conn_per_request = timed_leg(HOT_REQUESTS, || {
        let (status, _) = http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
        assert_eq!(status, 200);
    });
    shutdown(&addr, handle);

    // ---- Overload server: 2 workers, zero queue watermark, 2× load.
    let cfg = ServerConfig {
        threads: OVERLOAD_THREADS,
        queue: 0,
        max_requests_per_conn: usize::MAX,
        ..ServerConfig::default()
    };
    let (addr, handle) = spawn("overload", cfg);
    let offered = OVERLOAD_CLIENTS * OVERLOAD_REQUESTS_PER_CLIENT;
    let mut served_micros: Vec<u64> = Vec::new();
    let mut shed = 0usize;
    let overload_started = Instant::now();
    let outcomes: Vec<Vec<(u16, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..OVERLOAD_CLIENTS)
            .map(|client_id| {
                let addr = addr.clone();
                s.spawn(move || {
                    (0..OVERLOAD_REQUESTS_PER_CLIENT)
                        .map(|i| {
                            // Distinct instruction counts: no memo hits,
                            // every admitted request is real simulation.
                            let body = format!(
                                r#"{{"query":"simulate","program":"ear","instructions":{}}}"#,
                                20_000 + 251 * (client_id * OVERLOAD_REQUESTS_PER_CLIENT + i)
                            );
                            let started = Instant::now();
                            let reply = http_request(&addr, "POST", "/query", Some(&body)).unwrap();
                            (reply.status, started.elapsed().as_micros() as u64)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let overload_secs = overload_started.elapsed().as_secs_f64();
    for (status, micros) in outcomes.into_iter().flatten() {
        match status {
            200 => served_micros.push(micros),
            503 => shed += 1,
            other => panic!("unexpected overload status {other}"),
        }
    }
    shutdown(&addr, handle);
    served_micros.sort_unstable();
    let shed_rate = shed as f64 / offered as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"query\": {{\"kind\": \"simulate\", \"instructions\": 50000}},\n",
            "  \"cold_first_query_micros\": {},\n",
            "  \"hot\": {{\n",
            "    \"keepalive\": {{\"requests\": {}, \"qps\": {:.1}, \"mean_micros\": {:.1}}},\n",
            "    \"conn_per_request\": {{\"requests\": {}, \"qps\": {:.1}, \"mean_micros\": {:.1}}},\n",
            "    \"keepalive_speedup\": {:.3}\n",
            "  }},\n",
            "  \"overload\": {{\n",
            "    \"threads\": {}, \"queue\": 0, \"clients\": {}, \"offered\": {},\n",
            "    \"served\": {}, \"shed\": {}, \"shed_rate\": {:.3}, \"throughput_qps\": {:.1},\n",
            "    \"served_p50_micros\": {}, \"served_p99_micros\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        cold_micros,
        keepalive.requests,
        keepalive.qps,
        keepalive.mean_micros,
        conn_per_request.requests,
        conn_per_request.qps,
        conn_per_request.mean_micros,
        keepalive.qps / conn_per_request.qps,
        OVERLOAD_THREADS,
        OVERLOAD_CLIENTS,
        offered,
        served_micros.len(),
        shed,
        shed_rate,
        offered as f64 / overload_secs,
        percentile(&served_micros, 0.50),
        percentile(&served_micros, 0.99),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    println!("{json}");

    // A reduced criterion point tracks the hot keep-alive path without
    // re-paying the full comparison per sample.
    let (addr, handle) = spawn(
        "criterion",
        ServerConfig {
            threads: 2,
            max_requests_per_conn: usize::MAX,
            ..ServerConfig::default()
        },
    );
    let mut client = HttpClient::connect(&addr).unwrap();
    c.bench_function("serve_keepalive_hot_query", |b| {
        b.iter(|| {
            let reply = client.call("POST", "/query", Some(SIMULATE)).unwrap();
            assert_eq!(reply.status, 200);
        });
    });
    drop(client);
    shutdown(&addr, handle);
}

criterion_group!(benches, serve_bench);
criterion_main!(benches);
