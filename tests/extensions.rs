//! Cross-crate integration tests for the extension features: L2,
//! prefetching and multi-issue, composed together.

use unified_tradeoff::prelude::*;
use unified_tradeoff::simcpu::{validation_error, L2Config, Prefetch};

const N: usize = 40_000;

fn run(l2: bool, prefetch: Prefetch, width: u32, program: Spec92Program) -> SimResult {
    let mut cfg = CpuConfig::baseline(
        CacheConfig::new(8 * 1024, 32, 2).expect("valid L1"),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), 8),
    )
    .with_prefetch(prefetch)
    .with_issue_width(width);
    if l2 {
        cfg = cfg.with_l2(L2Config::new(
            CacheConfig::new(128 * 1024, 32, 4).expect("valid L2"),
            2,
        ));
    }
    Cpu::new(cfg).run(spec92_trace(program, 0xE7E7).take(N))
}

#[test]
fn every_extension_combination_keeps_the_model_identity() {
    for l2 in [false, true] {
        for prefetch in [Prefetch::None, Prefetch::NextLine] {
            for width in [1u32, 2, 4] {
                let r = run(l2, prefetch, width, Spec92Program::Wave5);
                assert!(
                    validation_error(&r) < 1e-9,
                    "l2={l2} pf={prefetch:?} w={width}: error {}",
                    validation_error(&r)
                );
            }
        }
    }
}

#[test]
fn extensions_compose_monotonically_on_average() {
    // Adding the L2 must help every proxy; the full stack must beat the
    // baseline on every proxy.
    for p in Spec92Program::ALL {
        let baseline = run(false, Prefetch::None, 1, p);
        let with_l2 = run(true, Prefetch::None, 1, p);
        let full = run(true, Prefetch::NextLine, 4, p);
        assert!(with_l2.cycles <= baseline.cycles, "{p}: L2 hurt");
        assert!(full.cycles < baseline.cycles, "{p}: full stack hurt");
    }
}

#[test]
fn l2_filters_memory_traffic() {
    let r = run(true, Prefetch::None, 1, Spec92Program::Doduc);
    let l2 = r.l2.expect("l2 stats present");
    // Every L1 fill probes the L2; a decent fraction must hit there.
    assert_eq!(l2.accesses(), r.dcache.fills + r.dcache.writebacks);
    assert!(
        l2.hit_ratio() > 0.3,
        "L2 local hit ratio {}",
        l2.hit_ratio()
    );
}

#[test]
fn issue_width_speedup_is_bounded_by_width_and_memory() {
    let p = Spec92Program::Ear;
    let w1 = run(false, Prefetch::None, 1, p);
    let w4 = run(false, Prefetch::None, 4, p);
    let speedup = w1.cycles as f64 / w4.cycles as f64;
    assert!(speedup > 1.0, "wider issue must help");
    assert!(
        speedup < 4.0,
        "cannot exceed the width (memory stalls persist)"
    );
    // The miss stalls are width-invariant up to interleaving noise.
    let ratio = w4.miss_stall_cycles as f64 / w1.miss_stall_cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "miss stalls should be stable: {ratio}"
    );
}

#[test]
fn multiissue_model_reduces_to_paper_at_width_one() {
    use unified_tradeoff::tradeoff::{equiv, multiissue};
    let machine = Machine::new(4.0, 32.0, 8.0).expect("valid");
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.93).expect("valid");
    for enh in [
        base.with_bus_factor(2.0),
        base.with_write_buffers(),
        base.with_pipelined_memory(2.0),
    ] {
        let paper = equiv::traded_hit_ratio(&machine, &base, &enh, hr).expect("physical");
        let wide = multiissue::traded_hit_ratio_w(&machine, &base, &enh, hr, 1).expect("physical");
        assert!((paper - wide).abs() < 1e-12);
    }
}
