//! Fault isolation end to end: a deterministic fault plan degrades the
//! suite the same way serially and under `--jobs N`, transient faults
//! retry to byte-identical documents, strict runs stop with a typed
//! error, and a poisoned trace-store lock is recovered, not fatal.
//!
//! Every test arms its own [`FaultPlan`]; the arm gate serialises them
//! so plans never overlap within the process.

use bench::fault::{self, FaultKind, FaultPlan, Site};
use bench::registry::RunCtx;
use bench::sched::{drive, run_suite, RetryPolicy, SuiteOptions};
use bench::Error;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("faults_it_{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(jobs: usize) -> SuiteOptions {
    SuiteOptions::new(jobs, RunCtx::with_instructions(2_000))
        .keep_going(true)
        .with_timeout(None)
}

fn fast_retry(mut o: SuiteOptions) -> SuiteOptions {
    o.retry = RetryPolicy {
        max_retries: 3,
        backoff: Duration::ZERO,
    };
    o
}

/// One panic plus one retry-exhausting I/O fault, pinned to run sites
/// (run-site shots are claimed per experiment id, so the same failures
/// fire regardless of schedule). Fresh per run: shot counters deplete.
fn degraded_plan() -> FaultPlan {
    FaultPlan::new()
        .with(Site::Run, "fig2", FaultKind::Panic, 1)
        .with(Site::Run, "victim", FaultKind::Io, u32::MAX)
}

#[test]
fn serial_and_parallel_degraded_runs_are_byte_identical() {
    let serial_dir = tmp_dir("serial");
    let parallel_dir = tmp_dir("parallel");

    let serial = {
        let _armed = fault::arm(degraded_plan());
        drive("all", &fast_retry(opts(1)), &serial_dir).expect("keep-going run returns Ok")
    };
    let parallel = {
        let _armed = fault::arm(degraded_plan());
        drive("all", &fast_retry(opts(4)), &parallel_dir).expect("keep-going run returns Ok")
    };

    assert_eq!(serial.run.document(), parallel.run.document());
    let m_serial = serial.manifest.expect("full runs write a manifest");
    let m_parallel = parallel.manifest.expect("full runs write a manifest");
    assert_eq!(m_serial.to_json(), m_parallel.to_json());
    let on_disk = fs::read_to_string(serial_dir.join(report::MANIFEST_NAME)).unwrap();
    assert_eq!(on_disk, m_serial.to_json());

    // Exactly the two faulted experiments failed; everything else ran.
    let statuses = &m_serial.statuses;
    assert_eq!(statuses.len(), bench::registry::all().len());
    let failed: Vec<&str> = statuses
        .iter()
        .filter(|s| s.status != "ok")
        .map(|s| s.id.as_str())
        .collect();
    assert_eq!(failed, ["fig2", "victim"]);
    assert!(serial.run.document().contains("Suite failures"));
    assert!(serial.run.document().contains("fig2: failed — panicked"));
    // Failed experiments write no artifacts.
    assert!(!serial_dir.join("fig2.csv").exists());
    assert!(serial_dir.join("fig1.csv").exists());

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}

#[test]
fn transient_faults_retry_to_a_byte_identical_document() {
    let selection = bench::registry::matching("fig2");
    let clean = {
        let _armed = fault::arm(FaultPlan::new());
        run_suite(&selection, &fast_retry(opts(1)))
    };
    let retried = {
        let _armed = fault::arm(FaultPlan::new().with(Site::Run, "fig2", FaultKind::Io, 2));
        run_suite(&selection, &fast_retry(opts(1)))
    };
    assert_eq!(retried.outcomes[0].status(), "retried(2)");
    assert!(retried.degraded());
    assert!(!retried.has_failures());
    assert_eq!(clean.document(), retried.document());
}

#[test]
fn strict_runs_stop_with_a_typed_error() {
    let dir = tmp_dir("strict");
    let _armed = fault::arm(FaultPlan::new().with(Site::Run, "fig2", FaultKind::Panic, 1));
    let err = drive("fig2", &fast_retry(opts(1)).keep_going(false), &dir).unwrap_err();
    match err {
        Error::Experiment { id, failure } => {
            assert_eq!(id, "fig2");
            assert_eq!(failure.status(), "failed");
        }
        other => panic!("expected experiment failure, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_poisoned_store_lock_is_recovered_and_retried() {
    // fig1 reads the memoised SPEC working set; an injected fault at the
    // lock site unwinds while the store mutex is held, poisoning it. The
    // retry must recover the lock (clearing the wedged map) and succeed.
    let before = bench::tracestore::poison_recoveries();
    let selection = bench::registry::matching("fig1");
    let run = {
        let _armed = fault::arm(FaultPlan::new().with(Site::Lock, "fig1", FaultKind::Io, 1));
        run_suite(&selection, &fast_retry(opts(1)))
    };
    assert!(
        !run.has_failures(),
        "lock fault should be retried, got {}",
        run.outcomes[0].status()
    );
    assert_eq!(run.outcomes[0].status(), "retried(1)");
    assert!(
        bench::tracestore::poison_recoveries() > before,
        "the poisoned store mutex was recovered"
    );
}
