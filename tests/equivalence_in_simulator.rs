//! The paper's central claim, verified end to end *in the simulator*:
//! two systems the analytic model declares equivalent must produce equal
//! cycle counts when actually simulated.
//!
//! Method: build traces with *exactly* controlled hit ratios — hits
//! re-reference a resident line, misses touch fresh lines that never
//! recur. Measure `HR₁` on the bus-`D` system, ask Eq. 6 for the hit
//! ratio `HR₂` the doubled-bus system may drop to, build a second trace
//! at `HR₂`, simulate both, and compare cycles.

use unified_tradeoff::prelude::*;

const LINE: u64 = 32;
const REFS: u64 = 20_000;
const PLAIN_PER_REF: u64 = 2;

/// A trace with exactly `misses` cold misses among `REFS` data loads
/// (no stores, so `α = 0` on both systems).
fn controlled_trace(misses: u64) -> Vec<Instr> {
    assert!(misses <= REFS);
    let mut out = Vec::new();
    let mut fresh = 0x100_0000u64; // never-revisited region
    let hot = 0x1000u64; // single resident line
    let mut pc = 0u64;
    for i in 0..REFS {
        // Spread misses evenly through the trace (Bresenham-style).
        let is_miss = (i as u128 * misses as u128 / REFS as u128)
            != ((i + 1) as u128 * misses as u128 / REFS as u128);
        let addr = if is_miss {
            fresh += 64 * LINE; // far from everything, unique set streams
            fresh
        } else {
            hot
        };
        out.push(Instr::mem(pc, MemRef::load(addr, 4)));
        pc += 4;
        for _ in 0..PLAIN_PER_REF {
            out.push(Instr::plain(pc));
            pc += 4;
        }
    }
    // Warm the hot line first so hits are exact.
    let mut trace = vec![Instr::mem(0u64, MemRef::load(hot, 4))];
    trace.extend(out);
    trace
}

fn simulate(trace: &[Instr], bus_bytes: u64, beta: u64) -> SimResult {
    let cfg = CpuConfig::baseline(
        CacheConfig::new(64 * 1024, LINE, 2).expect("valid cache"),
        MemoryTiming::new(BusWidth::new(bus_bytes).expect("valid bus"), beta),
    );
    Cpu::new(cfg).run(trace.iter().copied())
}

#[test]
fn doubled_bus_equivalence_law_holds_in_simulation() {
    for (hr1_target, beta) in [(0.95, 8u64), (0.90, 4), (0.98, 16)] {
        let misses1 = ((1.0 - hr1_target) * REFS as f64).round() as u64;
        let trace1 = controlled_trace(misses1);
        let base = simulate(&trace1, 4, beta);
        let hr1 = HitRatio::new(base.dcache.hit_ratio()).expect("valid");

        // Model: the equal-performance hit ratio on the doubled bus
        // (α = 0 — the controlled trace never dirties a line).
        let machine = Machine::new(4.0, LINE as f64, beta as f64).expect("valid");
        let sys = SystemConfig::full_stalling(0.0);
        let hr2 =
            tradeoff::equiv::equivalent_hit_ratio(&machine, &sys, &sys.with_bus_factor(2.0), hr1)
                .expect("physical trade");

        // Build the second trace at HR₂ and run it on the 64-bit system.
        let misses2 = ((1.0 - hr2.value()) * REFS as f64).round() as u64;
        let trace2 = controlled_trace(misses2);
        let enhanced = simulate(&trace2, 8, beta);

        let rel = (enhanced.cycles as f64 - base.cycles as f64).abs() / base.cycles as f64;
        assert!(
            rel < 0.003,
            "HR₁={hr1}, HR₂={hr2}, β={beta}: cycles diverge by {:.3}% ({} vs {})",
            100.0 * rel,
            base.cycles,
            enhanced.cycles
        );
    }
}

#[test]
fn write_buffer_equivalence_law_holds_in_simulation() {
    // Same construction, but with stores so flushes exist: compare an
    // unbuffered system at HR₁ with a buffered one at HR₂ (Eq. 6 with
    // the write-buffer delay kernel), α measured from the baseline run.
    let beta = 8u64;
    let misses1 = 1_000;
    let mut trace1 = controlled_trace(misses1);
    // Turn every other miss into a store (dirty fills → flushes later).
    let mut flip = false;
    for instr in &mut trace1 {
        if let Some(m) = &mut instr.mem {
            if m.addr.raw() >= 0x100_0000 {
                if flip {
                    m.op = MemOp::Store;
                }
                flip = !flip;
            }
        }
    }
    let run = |trace: &[Instr], buffered: bool| {
        let mut cfg = CpuConfig::baseline(
            CacheConfig::new(64 * 1024, LINE, 2).expect("valid cache"),
            MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
        );
        if buffered {
            cfg = cfg.with_write_buffer(WriteBufferConfig::default());
        }
        Cpu::new(cfg).run(trace.iter().copied())
    };
    let base = run(&trace1, false);
    let alpha = base.alpha();
    assert!(alpha > 0.0, "the construction must generate flushes");

    let machine = Machine::new(4.0, LINE as f64, beta as f64).expect("valid");
    let sys = SystemConfig::full_stalling(alpha.clamp(0.0, 1.0));
    let hr1 = HitRatio::new(base.dcache.hit_ratio()).expect("valid");
    let hr2 = tradeoff::equiv::equivalent_hit_ratio(&machine, &sys, &sys.with_write_buffers(), hr1)
        .expect("physical");

    // Second trace at HR₂ with the same store pattern on misses.
    let misses2 = ((1.0 - hr2.value()) * REFS as f64).round() as u64;
    let mut trace2 = controlled_trace(misses2);
    let mut flip = false;
    for instr in &mut trace2 {
        if let Some(m) = &mut instr.mem {
            if m.addr.raw() >= 0x100_0000 {
                if flip {
                    m.op = MemOp::Store;
                }
                flip = !flip;
            }
        }
    }
    let enhanced = run(&trace2, true);
    let rel = (enhanced.cycles as f64 - base.cycles as f64).abs() / base.cycles as f64;
    assert!(
        rel < 0.02,
        "write-buffer equivalence diverges by {:.2}% (α={alpha:.3}, HR₁={hr1}, HR₂={hr2})",
        100.0 * rel
    );
}

#[test]
fn wider_bus_strictly_helps_at_equal_cache_size() {
    let trace = controlled_trace(1_000);
    let narrow = simulate(&trace, 4, 8);
    let wide = simulate(&trace, 8, 8);
    assert!(
        wide.cycles < narrow.cycles,
        "doubling the bus must help: {} vs {}",
        wide.cycles,
        narrow.cycles
    );
}

#[test]
fn longer_memory_cycle_amplifies_the_gap() {
    let trace = controlled_trace(1_000);
    let gap = |beta: u64| {
        let n = simulate(&trace, 4, beta);
        let w = simulate(&trace, 8, beta);
        n.cycles - w.cycles
    };
    assert!(gap(16) > gap(4));
}

#[test]
fn controlled_trace_hits_its_target_exactly() {
    for misses in [0u64, 100, 5_000, REFS] {
        let r = simulate(&controlled_trace(misses), 4, 8);
        // +1 warm-up load, always a miss on the hot line's first touch.
        assert_eq!(r.dcache.load_misses, misses + 1, "target {misses}");
        assert_eq!(r.dcache.accesses(), REFS + 1);
    }
}
