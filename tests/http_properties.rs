//! Property tests for the server's HTTP request-head parser: malformed
//! input of any shape must surface as a typed `Err` (answered `400`) or
//! an incomplete-head `Ok(None)` — never a panic. A hostile peer can
//! cost itself a connection, not the worker pool (mirrors
//! `din_properties.rs` for the `.din` trace parser).

use proptest::prelude::*;
use unified_tradeoff::server::{parse_head, MAX_BODY_BYTES, MAX_HEAD_BYTES};

/// Header-line shapes that stress the parser: well-formed fields,
/// missing colons, hostile lengths, binary junk, whitespace soup.
fn header_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<u32>().prop_map(|n| format!("Content-Length: {n}")),
        any::<u64>().prop_map(|n| format!("Content-Length: {n}0000000000")),
        Just("Content-Length: nope".to_string()),
        Just("Content-Length: -1".to_string()),
        Just("Connection: close".to_string()),
        Just("Connection: keep-alive".to_string()),
        any::<u32>().prop_map(|n| format!("X-Request-Timeout-Ms: {n}")),
        Just("X-Request-Timeout-Ms: soon".to_string()),
        Just("no colon here".to_string()),
        Just("Host: localhost".to_string()),
        Just(":".to_string()),
        Just("   ".to_string()),
        Just("\u{0}\u{0}".to_string()),
    ]
}

/// Request-line shapes: valid, truncated, empty, junk.
fn request_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GET /stats HTTP/1.1".to_string()),
        Just("POST /query HTTP/1.1".to_string()),
        Just("GET / HTTP/1.0".to_string()),
        Just("GET".to_string()),
        Just("".to_string()),
        Just("\t \t".to_string()),
        proptest::collection::vec(0x20u8..0x7f, 0..40)
            .prop_map(|b| String::from_utf8(b).expect("printable ASCII")),
    ]
}

proptest! {
    /// Arbitrary raw bytes (including invalid UTF-8 and NULs) never
    /// panic the parser: every outcome is a typed refusal, a complete
    /// head, or a request for more bytes.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_head(&bytes);
    }

    /// Header soup behind a real request line never panics, and when
    /// it parses, the consumed offset stays inside the buffer.
    #[test]
    fn header_soup_never_panics(
        line in request_line(),
        headers in proptest::collection::vec(header_fragment(), 0..12),
    ) {
        let mut text = line;
        text.push_str("\r\n");
        for h in &headers {
            text.push_str(h);
            text.push_str("\r\n");
        }
        text.push_str("\r\n");
        if let Ok(Some((head, consumed))) = parse_head(text.as_bytes()) {
            prop_assert!(consumed <= text.len());
            prop_assert!(head.content_length <= MAX_BODY_BYTES);
            prop_assert!(!head.method.is_empty() && !head.path.is_empty());
        }
    }

    /// Every prefix of a valid request either asks for more bytes or
    /// parses; truncation is never an error, never a panic.
    #[test]
    fn truncated_requests_ask_for_more_bytes(cut in 0usize..64) {
        let full = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody";
        let cut = cut.min(full.len());
        match parse_head(&full[..cut]) {
            Ok(Some((head, _))) => prop_assert_eq!(head.content_length, 4),
            Ok(None) => prop_assert!(cut < 63, "the complete head must parse"),
            Err(e) => prop_assert!(false, "a truncated valid request is not an error: {}", e),
        }
    }

    /// A valid request followed by pipelined garbage still parses, and
    /// `consumed` points exactly at the garbage.
    #[test]
    fn pipelined_garbage_does_not_corrupt_framing(
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut buf = b"GET /stats HTTP/1.1\r\n\r\n".to_vec();
        let head_len = buf.len();
        buf.extend_from_slice(&garbage);
        let (head, consumed) = parse_head(&buf).expect("valid head").expect("complete head");
        prop_assert_eq!(consumed, head_len);
        prop_assert_eq!(head.path.as_str(), "/stats");
        prop_assert_eq!(head.content_length, 0);
    }
}

#[test]
fn known_bad_inputs_are_typed_refusals() {
    // Oversized declared body.
    let oversized = format!(
        "POST /q HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert!(parse_head(oversized.as_bytes()).is_err());
    // Absent Content-Length is fine — zero-length body.
    let (head, _) = parse_head(b"POST /q HTTP/1.1\r\n\r\n").unwrap().unwrap();
    assert_eq!(head.content_length, 0);
    // A head that never terminates is refused once over budget, so a
    // drip-feeding peer cannot balloon the carry buffer.
    let endless = vec![b'x'; MAX_HEAD_BYTES + 1];
    assert!(parse_head(&endless).is_err());
    // Binary junk before any terminator: still just "need more bytes"
    // while within budget, even when it is not UTF-8.
    assert_eq!(parse_head(&[0xff, 0xfe, 0x00]).unwrap(), None);
    // But once terminated, non-UTF-8 heads are refused.
    assert!(parse_head(&[0xff, 0xfe, b'\r', b'\n', b'\r', b'\n']).is_err());
    // Conflicting lengths are refused rather than smuggled.
    assert!(
        parse_head(b"POST /q HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n").is_err()
    );
}
