//! Property-based tests of cache-simulator invariants.

use proptest::prelude::*;
use simcache::{Cache, CacheConfig, Replacement, WriteMiss};
use simtrace::{Addr, MemOp};

/// A random reference stream over a bounded address space, so conflict
/// behaviour is actually exercised.
fn streams() -> impl Strategy<Value = Vec<(bool, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..16 * 1024), 1..600)
}

fn drive(cache: &mut Cache, stream: &[(bool, u64)]) {
    for &(is_store, addr) in stream {
        let op = if is_store { MemOp::Store } else { MemOp::Load };
        cache.access(op, Addr::new(addr & !3)); // 4-byte aligned
    }
}

proptest! {
    /// Accounting: hits + misses = accesses, fills ≤ misses,
    /// writebacks ≤ fills (write-allocate), resident lines ≤ capacity.
    #[test]
    fn accounting_invariants(stream in streams()) {
        let cfg = CacheConfig::new(2 * 1024, 32, 2).expect("valid");
        let mut cache = Cache::new(cfg);
        drive(&mut cache, &stream);
        let s = cache.stats();
        prop_assert_eq!(s.hits() + s.misses(), s.accesses());
        prop_assert_eq!(s.accesses(), stream.len() as u64);
        prop_assert!(s.fills <= s.misses());
        prop_assert!(s.writebacks <= s.fills);
        prop_assert!(cache.resident_lines() <= cfg.num_lines());
    }

    /// The LRU stack property: a larger fully-associative LRU cache never
    /// misses more than a smaller one on the same trace.
    #[test]
    fn lru_stack_property(stream in streams()) {
        let small = CacheConfig::new(1024, 32, 32).expect("fully associative");
        let big = CacheConfig::new(4096, 32, 128).expect("fully associative");
        let mut c_small = Cache::new(small);
        let mut c_big = Cache::new(big);
        drive(&mut c_small, &stream);
        drive(&mut c_big, &stream);
        prop_assert!(
            c_big.stats().hits() >= c_small.stats().hits(),
            "inclusion violated: big {} < small {}",
            c_big.stats().hits(),
            c_small.stats().hits()
        );
    }

    /// Write-around caches never allocate on store misses: every fill is
    /// load-initiated, and write_arounds counts exactly the store misses.
    #[test]
    fn write_around_counts(stream in streams()) {
        let cfg = CacheConfig::new(2 * 1024, 32, 2)
            .expect("valid")
            .with_write_miss(WriteMiss::Around);
        let mut cache = Cache::new(cfg);
        drive(&mut cache, &stream);
        let s = cache.stats();
        prop_assert_eq!(s.write_arounds, s.store_misses);
        prop_assert_eq!(s.fills, s.load_misses);
    }

    /// Replacement policies only change *which* line is evicted, never
    /// the bookkeeping identities; and random replacement is
    /// seed-deterministic.
    #[test]
    fn policies_keep_invariants(stream in streams()) {
        for repl in [Replacement::Lru, Replacement::Fifo, Replacement::Random, Replacement::TreePlru] {
            let cfg = CacheConfig::new(2 * 1024, 32, 4).expect("valid").with_replacement(repl);
            let mut a = Cache::new(cfg);
            let mut b = Cache::new(cfg);
            drive(&mut a, &stream);
            drive(&mut b, &stream);
            prop_assert_eq!(a.stats(), b.stats(), "{} not deterministic", repl);
            prop_assert_eq!(a.stats().hits() + a.stats().misses(), stream.len() as u64);
        }
    }

    /// After flushing, no line is dirty and a second flush is empty.
    #[test]
    fn flush_leaves_nothing_dirty(stream in streams()) {
        let cfg = CacheConfig::new(2 * 1024, 32, 2).expect("valid");
        let mut cache = Cache::new(cfg);
        drive(&mut cache, &stream);
        cache.flush_all();
        prop_assert!(cache.flush_all().is_empty());
    }

    /// Trace encode/decode is lossless for arbitrary aligned streams.
    #[test]
    fn trace_encoding_round_trips(stream in streams()) {
        use simtrace::encode::TraceBuffer;
        use simtrace::{Instr, MemRef};
        let trace: Vec<Instr> = stream
            .iter()
            .enumerate()
            .map(|(i, &(is_store, addr))| {
                let mref = if is_store {
                    MemRef::store(addr & !3, 4)
                } else {
                    MemRef::load(addr & !3, 4)
                };
                Instr::mem((i as u64) * 4, mref)
            })
            .collect();
        let buf = TraceBuffer::encode(trace.iter().copied());
        let decoded: Vec<Instr> = buf.iter().collect::<Result<_, _>>().expect("decodes");
        prop_assert_eq!(decoded, trace);
    }
}
