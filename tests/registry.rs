//! Registry completeness: every bench experiment module is registered
//! exactly once, ids are unique, and the suite document preserves the
//! historical `run_all` section order byte for byte.

use bench::registry::{self, RunCtx};
use bench::sched::{run_suite, SuiteOptions};
use std::collections::HashSet;

/// The section order and titles of the seed `run_all` binary. The
/// registry must keep printing the suite exactly like this.
const SEED_ORDER: [(&str, &str); 28] = [
    ("table23", "Tables 2 and 3"),
    ("fig1", "Figure 1"),
    ("fig2", "Figure 2"),
    ("fig3", "Figure 3"),
    ("fig4", "Figure 4"),
    ("fig5", "Figure 5"),
    ("fig6", "Figure 6"),
    ("example1", "Example 1"),
    ("xover", "Crossover points"),
    ("linesize", "Line-size analysis"),
    ("validate", "Model validation"),
    ("mi", "Multi-issue extension"),
    ("prefetch", "Prefetch pricing"),
    ("writemiss", "Write-miss policy ablation"),
    ("alpha", "Flush-ratio ablation"),
    ("l2", "L2 extension"),
    ("cost", "Pins vs silicon"),
    ("missdist", "Miss-distance profiles"),
    ("phases", "Per-phase profiles"),
    ("sector", "Sector caches"),
    ("victim", "Victim buffers"),
    ("assoc", "Associativity & replacement"),
    ("context", "Multiprogramming"),
    ("assumptions", "Assumption audit"),
    ("nb", "Non-blocking cache"),
    ("reuse", "Reuse-distance fingerprints"),
    ("sweep", "Design-space sweep"),
    ("grid", "Analytic miss-ratio grid"),
];

#[test]
fn registry_matches_seed_order_and_titles() {
    let all = registry::all();
    assert_eq!(all.len(), SEED_ORDER.len());
    for (e, (id, title)) in all.iter().zip(SEED_ORDER) {
        assert_eq!(e.id(), id);
        assert_eq!(e.title(), title);
    }
}

#[test]
fn ids_are_unique() {
    let mut seen = HashSet::new();
    for e in registry::all() {
        assert!(seen.insert(e.id()), "duplicate id {}", e.id());
    }
}

#[test]
fn every_experiment_module_is_registered_exactly_once() {
    // Infrastructure modules carry no experiment; everything else in the
    // bench crate must appear in the registry.
    let infra = [
        "common",
        "error",
        "exec",
        "fault",
        "queryenv",
        "tracestore",
        "registry",
        "sched",
        "stream",
    ];
    let lib = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench/src/lib.rs"),
    )
    .expect("bench lib.rs readable");
    let declared: Vec<&str> = lib
        .lines()
        .filter_map(|l| l.strip_prefix("pub mod "))
        .map(|m| m.trim_end_matches(';'))
        .filter(|m| !infra.contains(m))
        .collect();
    assert!(
        declared.len() >= 24,
        "unexpected module count: {declared:?}"
    );

    let registered: Vec<String> = registry::all()
        .iter()
        .map(|e| {
            e.module()
                .strip_prefix("bench::")
                .expect("module path rooted in bench")
                .to_string()
        })
        .collect();
    for m in &declared {
        let count = registered.iter().filter(|r| r == m).count();
        // `unified` registers one entry per figure; every other module
        // maps to exactly one experiment.
        let expected = if *m == "unified" { 3 } else { 1 };
        assert_eq!(count, expected, "module {m} registered {count} times");
    }
    assert_eq!(registered.len(), registry::all().len());
}

#[test]
fn serial_and_parallel_suite_documents_are_identical() {
    // A reduced instruction budget keeps this affordable while still
    // exercising the warm-key scheduling across real experiments; the
    // shared-trace subset covers every declared store key.
    let selection: Vec<_> = registry::all()
        .into_iter()
        .filter(|e| !e.depends_on_traces().is_empty())
        .collect();
    assert!(
        selection.len() >= 6,
        "fig1/3/4/5, validate, nb, linesize, sweep"
    );
    let ctx = RunCtx::with_instructions(2_000);
    let serial = run_suite(&selection, &SuiteOptions::new(1, ctx.clone()));
    let parallel = run_suite(&selection, &SuiteOptions::new(4, ctx));
    assert_eq!(serial.document(), parallel.document());
    let footer = parallel.footer();
    for e in &selection {
        assert!(footer.contains(e.id()), "footer missing {}", e.id());
    }
}
