//! Property-based tests of the analytic model's invariants.

use proptest::prelude::*;
use tradeoff::equiv::{
    equivalent_hit_ratio, hit_gain_equivalent, miss_traffic_ratio, traded_hit_ratio,
};
use tradeoff::linesize::{optimal_line_eq19, optimal_line_smith, FillTiming, LineCandidate};
use tradeoff::{HitRatio, Machine, SystemConfig};

fn machines() -> impl Strategy<Value = Machine> {
    // D ∈ {4, 8}, L/D ∈ {2, 4, 8, 16}, β_m ∈ [2, 100].
    (
        prop_oneof![Just(4.0), Just(8.0)],
        prop_oneof![Just(2u32), Just(4), Just(8), Just(16)],
        2.0..100.0f64,
    )
        .prop_map(|(d, chunks, beta)| {
            Machine::new(d, d * f64::from(chunks), beta).expect("valid machine")
        })
}

fn alphas() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn hit_ratios() -> impl Strategy<Value = HitRatio> {
    (0.80..0.999f64).prop_map(|v| HitRatio::new(v).expect("in range"))
}

proptest! {
    /// Genuinely stronger systems always have r ≥ 1 and hence trade a
    /// non-negative hit ratio.
    #[test]
    fn enhancements_never_trade_negative(machine in machines(), alpha in alphas(), hr in hit_ratios()) {
        let base = SystemConfig::full_stalling(alpha);
        for enhanced in [
            base.with_bus_factor(2.0),
            base.with_write_buffers(),
            base.with_pipelined_memory(2.0),
        ] {
            if let Ok(r) = miss_traffic_ratio(&machine, &base, &enhanced) {
                prop_assert!(r >= 1.0 - 1e-12, "r = {r} for {enhanced}");
                let dhr = traded_hit_ratio(&machine, &base, &enhanced, hr).expect("same domain");
                prop_assert!(dhr >= -1e-12);
            }
        }
    }

    /// Eq. 6 and Eq. 7 are two views of one law: the Eq.-7 gain evaluated
    /// at the traded-down hit ratio recovers exactly the Eq.-6 delta.
    #[test]
    fn eq6_and_eq7_are_inverses(machine in machines(), alpha in alphas(), hr in hit_ratios()) {
        let base = SystemConfig::full_stalling(alpha);
        let enhanced = base.with_bus_factor(2.0);
        let (Ok(dhr), Ok(hr2)) = (
            traded_hit_ratio(&machine, &base, &enhanced, hr),
            equivalent_hit_ratio(&machine, &base, &enhanced, hr),
        ) else {
            return Ok(()); // non-physical corner (HR underflow)
        };
        let gain = hit_gain_equivalent(&machine, &base, &enhanced, hr2).expect("same domain");
        prop_assert!((gain - dhr).abs() < 1e-9, "gain {gain} vs ΔHR {dhr}");
    }

    /// The bus-doubling trade lies in the paper's band
    /// `(1 − HR) ≤ ΔHR ≤ 1.5(1 − HR)` for α = 0.5 and β_m ≥ 2
    /// (r between 2 and 2.5).
    #[test]
    fn bus_doubling_band(machine in machines(), hr in hit_ratios()) {
        let base = SystemConfig::full_stalling(0.5);
        let enhanced = base.with_bus_factor(2.0);
        let dhr = traded_hit_ratio(&machine, &base, &enhanced, hr).expect("physical");
        let miss = hr.miss_ratio();
        prop_assert!(dhr >= miss - 1e-9, "below 2×: {dhr} vs miss {miss}");
        prop_assert!(dhr <= 1.5 * miss + 1e-9, "above 2.5×: {dhr} vs miss {miss}");
    }

    /// ΔHR for bus doubling decreases monotonically in β_m (Figure 2).
    #[test]
    fn bus_trade_monotone_in_beta(d in prop_oneof![Just(4.0), Just(8.0)],
                                  chunks in prop_oneof![Just(2u32), Just(4), Just(8)],
                                  hr in hit_ratios()) {
        let base = SystemConfig::full_stalling(0.5);
        let enhanced = base.with_bus_factor(2.0);
        let mut prev = f64::INFINITY;
        for beta in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let m = Machine::new(d, d * f64::from(chunks), beta).expect("valid");
            let dhr = traded_hit_ratio(&m, &base, &enhanced, hr).expect("physical");
            prop_assert!(dhr <= prev + 1e-12);
            prev = dhr;
        }
    }

    /// The paper's Figure 6 validation, generalised: for *any* hit-ratio
    /// curve over line sizes, the Eq. 19 selector agrees with Smith's
    /// Eq. 16 selector.
    #[test]
    fn smith_and_eq19_agree_on_random_curves(
        hrs in proptest::collection::vec(0.5..0.999f64, 5),
        c in 1.0..40.0f64,
        beta in 0.1..10.0f64,
    ) {
        let lines = [8.0, 16.0, 32.0, 64.0, 128.0];
        let candidates: Vec<LineCandidate> = lines
            .iter()
            .zip(&hrs)
            .map(|(&l, &h)| LineCandidate { line_bytes: l, hit_ratio: HitRatio::new(h).expect("in range") })
            .collect();
        let timing = FillTiming::new(c, beta).expect("valid");
        let smith = optimal_line_smith(&timing, 4.0, &candidates).expect("non-empty");
        let ours = optimal_line_eq19(&timing, 4.0, &candidates).expect("non-empty");
        // Both selectors minimise the same functional; ties can resolve
        // to different lines only with exactly equal weighted delays.
        let weight = |cand: &LineCandidate| {
            cand.hit_ratio.miss_ratio() * timing.miss_weight(cand.line_bytes, 4.0)
        };
        let ws = candidates.iter().find(|x| x.line_bytes == smith.line_bytes).map(weight).expect("present");
        let wo = candidates.iter().find(|x| x.line_bytes == ours.line_bytes).map(weight).expect("present");
        prop_assert!((ws - wo).abs() < 1e-9, "Smith {} vs Eq.19 {}", smith.line_bytes, ours.line_bytes);
    }

    /// Mean access time is monotone in hit ratio and bounded by the
    /// hit/miss extremes.
    #[test]
    fn mean_access_time_bounds(machine in machines(), alpha in alphas(), hr in hit_ratios()) {
        let sys = SystemConfig::full_stalling(alpha);
        let t = tradeoff::mean_access_time(&machine, &sys, hr).expect("valid");
        let g = sys.delay_per_missed_line(&machine).expect("valid");
        prop_assert!(t >= 1.0 - 1e-12 && t <= g + 1e-12);
        let better = HitRatio::new((hr.value() + 1.0) / 2.0).expect("valid");
        let t2 = tradeoff::mean_access_time(&machine, &sys, better).expect("valid");
        prop_assert!(t2 <= t + 1e-12);
    }
}
