//! Workload-spec contract tests: canonical round-tripping, content-hash
//! stability, and bit-identity of the six built-in SPEC92 proxy specs
//! against the legacy `spec92_trace` constructors they replaced.
//!
//! The trace store keys every memo entry on `WorkloadSpec::id()`, so
//! these properties are what keep `results/manifest.json` stable across
//! the declarative-workload refactor: same canonical bytes → same hash
//! → same traces → same artifacts.

use proptest::prelude::*;
use report::Json;
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::workload::{builtin, builtins, WorkloadSpec};
use simtrace::Instr;

/// The pinned content hashes of the six built-in proxy specs. These are
/// SHA-256 over the canonical JSON rendering; a drift here means every
/// memoised trace, timeline and histogram key changes — treat it as a
/// breaking change, not a test to update casually.
const PINNED_IDS: [(&str, &str); 6] = [
    (
        "nasa7",
        "e21ad3515398eceefa55cec28c57471be6a702f9e295a6594458d790c80a3777",
    ),
    (
        "swm256",
        "11418866e49fadc7cf86b4b286ac3a019024c954881a51543b00b4223116ded4",
    ),
    (
        "wave5",
        "cd42325165379beefbd5e9f22bda5da81236ff7ab9a3ca2e330c65dd1933ce9f",
    ),
    (
        "ear",
        "79d97484ce91b4f02ae3ec035608cecae5b814670d972b403619453e925f92e7",
    ),
    (
        "doduc",
        "09b0b284f1075a65b25dbd01e94a4f8e7a882dfe941a9c4310449bac84e36e21",
    ),
    (
        "hydro2d",
        "d51134785f3247abc5f39fec8cdab1071fe542e110350b0ccec92d6ab0de4de2",
    ),
];

#[test]
fn builtin_content_hashes_are_pinned() {
    assert_eq!(builtins().len(), PINNED_IDS.len());
    for (name, id) in PINNED_IDS {
        let spec = builtin(name).expect(name);
        assert_eq!(spec.id().hex(), id, "{name}: content hash drifted");
        assert_eq!(spec.label(), name);
        // Hashing is a pure function of the canonical bytes: a
        // re-parsed copy has the same identity.
        let reparsed = WorkloadSpec::from_json(&spec.to_json()).expect(name);
        assert_eq!(reparsed.id(), spec.id());
    }
}

#[test]
fn builtins_are_bit_identical_to_the_legacy_constructors() {
    for program in Spec92Program::ALL {
        let spec = builtin(&program.to_string()).expect("every proxy is a builtin");
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let legacy: Vec<Instr> = spec92_trace(program, seed).take(2_000).collect();
            let compiled: Vec<Instr> = spec.compile(seed).take(2_000).collect();
            assert_eq!(compiled, legacy, "{program} diverged at seed {seed:#x}");
        }
    }
}

fn num(n: u64) -> Json {
    Json::num(n as f64)
}

/// One random leaf node, as the JSON a user would write. Bounds keep
/// every draw inside the validators' accepted ranges; fractions and the
/// Zipf exponent are arbitrary f64s in range, which exercises the
/// shortest-round-trip number codec.
fn leaf() -> impl Strategy<Value = Json> {
    prop_oneof![
        (1u64..1 << 30, 1u64..1 << 16, 1u64..4096, 1u8..=32, 0u32..64).prop_map(
            |(base, region_bytes, stride, elem_size, store_period)| {
                Json::obj(vec![
                    ("kind", Json::str("strided")),
                    ("base", num(base)),
                    ("region_bytes", num(region_bytes)),
                    ("stride", num(stride)),
                    ("elem_size", Json::num(f64::from(elem_size))),
                    ("store_period", Json::num(f64::from(store_period))),
                ])
            }
        ),
        (
            1u64..1 << 30,
            1u32..2048,
            8u64..256,
            0.0f64..1.0,
            any::<u64>()
        )
            .prop_map(|(base, nodes, node_bytes, store_fraction, seed)| {
                Json::obj(vec![
                    ("kind", Json::str("chase")),
                    ("base", num(base)),
                    ("nodes", Json::num(f64::from(nodes))),
                    ("node_bytes", num(node_bytes)),
                    ("store_fraction", Json::num(store_fraction)),
                    ("seed", Json::str(format!("{seed:#x}"))),
                ])
            }),
        (1u64..1 << 30, 1u64..1 << 16, 0.0f64..1.0, 1u8..=32).prop_map(
            |(base, bytes, store_fraction, elem_size)| {
                Json::obj(vec![
                    ("kind", Json::str("working_set")),
                    ("base", num(base)),
                    ("bytes", num(bytes)),
                    ("store_fraction", Json::num(store_fraction)),
                    ("elem_size", Json::num(f64::from(elem_size))),
                ])
            }
        ),
        (
            1u64..1 << 30,
            1u32..2048,
            1u8..=32,
            0.1f64..2.0,
            0.0f64..1.0
        )
            .prop_map(|(base, slots, elem_size, s, store_fraction)| {
                Json::obj(vec![
                    ("kind", Json::str("zipf")),
                    ("base", num(base)),
                    ("slots", Json::num(f64::from(slots))),
                    ("elem_size", Json::num(f64::from(elem_size))),
                    ("s", Json::num(s)),
                    ("store_fraction", Json::num(store_fraction)),
                ])
            }),
    ]
}

/// A random spec: a leaf, a weighted mixture of leaves, or a phase
/// alternation over leaves, with an optional name and seed mix.
fn spec_json() -> impl Strategy<Value = Json> {
    let pattern = prop_oneof![
        leaf(),
        (proptest::collection::vec((0.1f64..10.0, leaf()), 1..4)).prop_map(|components| {
            Json::obj(vec![
                ("kind", Json::str("mixture")),
                (
                    "components",
                    Json::Arr(
                        components
                            .into_iter()
                            .map(|(weight, pattern)| {
                                Json::obj(vec![("weight", Json::num(weight)), ("pattern", pattern)])
                            })
                            .collect(),
                    ),
                ),
            ])
        }),
        (proptest::collection::vec((1u64..10_000, leaf()), 1..4)).prop_map(|phases| {
            Json::obj(vec![
                ("kind", Json::str("phases")),
                (
                    "phases",
                    Json::Arr(
                        phases
                            .into_iter()
                            .enumerate()
                            .map(|(i, (refs, pattern))| {
                                Json::obj(vec![
                                    ("name", Json::str(format!("phase{i}"))),
                                    ("refs", num(refs)),
                                    ("pattern", pattern),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }),
    ];
    (any::<bool>(), any::<u64>(), pattern).prop_map(|(named, seed_mix, pattern)| {
        let mut fields = Vec::new();
        if named {
            fields.push(("name".to_string(), Json::str("prop")));
        }
        fields.push(("seed_mix".to_string(), Json::str(format!("{seed_mix:#x}"))));
        fields.push(("pattern".to_string(), pattern));
        Json::Obj(fields)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → canonical render → parse is a fixed point: the second
    /// parse reproduces the canonical bytes and the content hash.
    #[test]
    fn canonical_form_is_a_round_trip_fixed_point(json in spec_json()) {
        let spec = WorkloadSpec::from_json(&json).expect("generated specs are valid");
        let canonical = spec.canonical_json().render();
        let reparsed = WorkloadSpec::from_json_str(&canonical).expect("canonical form parses");
        prop_assert_eq!(reparsed.canonical_json().render(), canonical.clone());
        prop_assert_eq!(reparsed.id(), spec.id());
        // The full form (with name) parses back to an equal spec.
        let full = WorkloadSpec::from_json_str(&spec.to_json().render()).unwrap();
        prop_assert_eq!(&full, &spec);
        prop_assert_eq!(full.label(), spec.label());
    }

    /// The name never enters the identity, and the identity is what the
    /// trace store keys on.
    #[test]
    fn names_are_labels_not_identities(json in spec_json()) {
        let spec = WorkloadSpec::from_json(&json).unwrap();
        let mut renamed = spec.clone();
        renamed.name = Some("somebody-else".to_string());
        prop_assert_eq!(renamed.id(), spec.id());
        let mut anon = spec.clone();
        anon.name = None;
        prop_assert_eq!(anon.id(), spec.id());
    }

    /// Compiled specs are deterministic in the seed and chunking never
    /// changes the stream (the contract the streaming pipeline needs).
    #[test]
    fn compilation_is_deterministic_and_chunk_invariant(
        json in spec_json(),
        seed in any::<u64>(),
        chunk_len in 1usize..700,
    ) {
        let spec = WorkloadSpec::from_json(&json).unwrap();
        let len = 1_500;
        let whole: Vec<Instr> = spec.compile(seed).take(len).collect();
        let again: Vec<Instr> = spec.compile(seed).take(len).collect();
        prop_assert_eq!(&again, &whole, "same seed, same stream");
        let mut chunked = Vec::with_capacity(len);
        spec.chunks(seed, len, chunk_len)
            .for_each_chunk(|c| chunked.extend_from_slice(c));
        prop_assert_eq!(chunked, whole, "chunking changed the stream");
    }
}
