//! One-dispatch-path contract: for every supported query shape, the
//! CLI's wire mode, the CLI's human report, and a direct
//! `tradeoff::api::dispatch` call agree — plus a binary-level audit of
//! the exit-code mapping.

use bench::queryenv::StoreWorkloads;
use std::process::Command;
use tradeoff::api::{dispatch, QueryRequest};
use unified_tradeoff::cli::run_cli;

/// Every query shape, as wire requests.
const REQUESTS: [&str; 11] = [
    r#"{"query":"price","hr":0.95}"#,
    r#"{"query":"crossover","chunks":8}"#,
    r#"{"query":"linesize","c":7,"beta":1,"curve":[[8,0.90],[16,0.94],[32,0.962],[64,0.97],[128,0.972]]}"#,
    r#"{"query":"design","hr":0.95,"target":5.0}"#,
    r#"{"query":"simulate","program":"ear","instructions":5000,"stall":"bnl3"}"#,
    r#"{"query":"simulate","workload":{"name":"probe","pattern":{"kind":"working_set","base":0,"bytes":8192,"store_fraction":0.25,"elem_size":8}},"instructions":5000}"#,
    r#"{"query":"grid","backend":"analytic","instructions":4000,"sets":32,"assoc":4,"target":0.5,"programs":["ear"]}"#,
    r#"{"query":"experiments"}"#,
    r#"{"query":"workloads"}"#,
    r#"{"query":"workloads","action":"show","name":"ear"}"#,
    r#"{"query":"workloads","action":"validate","workload":{"pattern":{"kind":"strided","base":0,"region_bytes":4096,"stride":8,"elem_size":8,"store_period":3}}}"#,
];

#[test]
fn every_query_shape_is_answered_by_the_same_dispatch_call() {
    for req_text in REQUESTS {
        let req = QueryRequest::from_json_str(req_text).expect(req_text);
        let direct = dispatch(&req, &StoreWorkloads)
            .expect(req_text)
            .to_json_string();
        let via_cli = run_cli(&[
            "query".to_string(),
            "--json".to_string(),
            req_text.to_string(),
        ])
        .expect(req_text);
        assert_eq!(via_cli, direct, "wire divergence for {req_text}");
        // The wire form is stable JSON that parses back.
        let value = report::Json::parse(&direct).expect(req_text);
        assert_eq!(value.get("ok").and_then(report::Json::as_bool), Some(true));
        assert_eq!(
            value.get("query").and_then(report::Json::as_str),
            Some(req.kind())
        );
    }
}

#[test]
fn human_subcommands_ride_the_typed_requests() {
    // Same request, two frontends: `--key value` flags and wire JSON
    // must parse to the same typed request.
    let flags = run_cli(&[
        "crossover".to_string(),
        "--chunks".to_string(),
        "8".to_string(),
    ])
    .unwrap();
    assert!(flags.contains("β_m > 4.67"), "{flags}");
    let wire_req = QueryRequest::from_json_str(r#"{"query":"crossover","chunks":8}"#).unwrap();
    let from_flags = match unified_tradeoff::cli::parse_args(&[
        "crossover".to_string(),
        "--chunks".to_string(),
        "8".to_string(),
    ])
    .unwrap()
    {
        unified_tradeoff::cli::Command::Report(req) => req,
        other => panic!("expected a report command, got {other:?}"),
    };
    assert_eq!(from_flags, wire_req);
}

/// Runs the CLI binary, returning its exit code.
fn cli_code(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_tradeoff-cli"))
        .args(args)
        .output()
        .expect("cli binary runs")
        .status
        .code()
        .unwrap_or(-1)
}

#[test]
fn binary_exit_codes_follow_the_documented_scheme() {
    // 0: success.
    assert_eq!(cli_code(&["crossover", "--chunks", "8"]), 0);
    // 2: bad usage — unknown subcommand, missing required flag,
    // unknown flag, and (the satellite fix) unknown flag *values*.
    assert_eq!(cli_code(&["frobnicate"]), 2);
    assert_eq!(cli_code(&["price"]), 2);
    assert_eq!(cli_code(&["price", "--hr", "0.95", "--frob", "1"]), 2);
    assert_eq!(cli_code(&["grid", "--backend", "magic"]), 2);
    assert_eq!(cli_code(&["simulate", "--program", "quake"]), 2);
    assert_eq!(
        cli_code(&["experiments", "run", "--filter", "no-such-tag"]),
        2
    );
    // 1: failure class — client mode against a dead port.
    assert_eq!(
        cli_code(&["query", "--server", "127.0.0.1:9", "--get", "stats"]),
        1
    );
}
