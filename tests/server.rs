//! End-to-end tests of the `tradeoff-server` binary: ephemeral-port
//! startup, CLI/server byte parity, request coalescing under
//! concurrency, `/stats` accounting, and graceful shutdown.

use report::Json;
use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use unified_tradeoff::server::http_call;

/// A running server child, killed on drop so a failing assertion never
/// leaks the process.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(tag: &str) -> ServerGuard {
    spawn_server_with(tag, &[])
}

fn spawn_server_with(tag: &str, extra: &[&str]) -> ServerGuard {
    let dir =
        std::env::temp_dir().join(format!("tradeoff_server_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr_file = dir.join("addr");
    let child = Command::new(env!("CARGO_BIN_EXE_tradeoff-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "4",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server binary spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim();
            if !text.is_empty() {
                break text.to_string();
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(10));
    };
    ServerGuard { child, addr }
}

/// Runs the CLI binary and returns (exit code, stdout).
fn cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tradeoff-cli"))
        .args(args)
        .output()
        .expect("cli binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

/// A simulate request: its answer requires a timeline extraction, so N
/// concurrent copies exercise the store's key-gate coalescing.
const SIMULATE: &str =
    r#"{"query":"simulate","program":"ear","instructions":50000,"stall":"bnl3"}"#;

#[test]
fn concurrent_queries_coalesce_onto_one_extraction_and_match_the_cli() {
    let server = spawn_server("coalesce");
    let addr = server.addr.clone();

    // A fresh server has done no store work: counters start at zero.
    let (status, body) = http_call(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(body.trim()).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(store.get("timeline_misses").unwrap().as_u64(), Some(0));

    // N concurrent POST /query sharing one trace key.
    const N: usize = 6;
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let (status, body) =
                        http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "all concurrent answers are identical");
    }

    // The acceptance criterion: exactly one extraction for the shared
    // key, every other request served from the memo.
    let (_, body) = http_call(&addr, "GET", "/stats", None).unwrap();
    let stats = Json::parse(body.trim()).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(
        store.get("timeline_misses").unwrap().as_u64(),
        Some(1),
        "N concurrent same-key queries must trigger exactly one extraction: {body}"
    );
    assert_eq!(
        store.get("timeline_hits").unwrap().as_u64(),
        Some((N - 1) as u64)
    );

    // Server latency accounting saw every request.
    let server_stats = stats.get("server").unwrap();
    assert!(server_stats.get("requests").unwrap().as_u64().unwrap() >= (N + 2) as u64);
    let query_stats = server_stats.get("queries").unwrap().get("query").unwrap();
    assert_eq!(query_stats.get("count").unwrap().as_u64(), Some(N as u64));
    assert!(query_stats.get("max_micros").unwrap().as_u64().unwrap() > 0);

    // Byte parity with the CLI, both modes: local dispatch and client.
    let (code, local) = cli(&["query", "--json", SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(
        local, bodies[0],
        "POST /query body and CLI stdout must be byte-identical"
    );
    let (code, remote) = cli(&["query", "--server", &addr, "--json", SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(remote, bodies[0]);

    // GET /experiments is the experiments query verbatim.
    let (status, listing) = http_call(&addr, "GET", "/experiments", None).unwrap();
    assert_eq!(status, 200);
    let (code, cli_listing) = cli(&["query", "--json", r#"{"query":"experiments"}"#]);
    assert_eq!(code, 0);
    assert_eq!(listing, cli_listing);

    // Typed errors reach the client with usage-class exit codes.
    let (code, _) = cli(&[
        "query",
        "--server",
        &addr,
        "--json",
        r#"{"query":"simulate","program":"quake"}"#,
    ]);
    assert_eq!(code, 2, "a server-rejected request is bad usage");
}

/// An inline custom spec — not one of the six builtins.
const INLINE_SIMULATE: &str = r#"{"query":"simulate","workload":{"name":"custom-probe","seed_mix":"0xfeed","pattern":{"kind":"mixture","components":[{"weight":3,"pattern":{"kind":"working_set","base":0,"bytes":16384,"store_fraction":0.3,"elem_size":8}},{"weight":1,"pattern":{"kind":"strided","base":1048576,"region_bytes":65536,"stride":64,"elem_size":8,"store_period":5}}]}},"instructions":30000}"#;

#[test]
fn inline_specs_answer_identically_over_http_and_cli() {
    let server = spawn_server("inline");
    let addr = server.addr.clone();

    // The acceptance criterion: an inline custom spec answers
    // byte-identically via `tradeoff-cli query --json` and POST /query.
    let (status, http_body) = http_call(&addr, "POST", "/query", Some(INLINE_SIMULATE)).unwrap();
    assert_eq!(status, 200, "{http_body}");
    assert!(http_body.contains(r#""query":"simulate""#), "{http_body}");
    let (code, cli_body) = cli(&["query", "--json", INLINE_SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(
        cli_body, http_body,
        "inline-spec answers must be byte-identical across frontends"
    );

    // The workloads catalogue is served through the same dispatch.
    let (status, listing) =
        http_call(&addr, "POST", "/query", Some(r#"{"query":"workloads"}"#)).unwrap();
    assert_eq!(status, 200);
    assert!(listing.contains("hydro2d"), "{listing}");

    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 0);
}

#[test]
fn shutdown_token_gates_remote_stops() {
    let mut server = spawn_server_with("token", &["--shutdown-token", "s3cret"]);
    let addr = server.addr.clone();

    // Without the token the stop is refused — 403, usage-class exit.
    let (status, body) = http_call(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("forbidden"), "{body}");
    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 2, "a refused shutdown is usage-class at the CLI");
    let (status, body) =
        http_call(&addr, "POST", "/shutdown", Some(r#"{"token":"wrong"}"#)).unwrap();
    assert_eq!(status, 403, "{body}");

    // The server kept serving through all of that.
    let (status, _) = http_call(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);

    // With the token the stop drains and the process exits 0.
    let (code, _) = cli(&[
        "query",
        "--server",
        &addr,
        "--shutdown",
        "--token",
        "s3cret",
    ]);
    assert_eq!(code, 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("child pollable") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not stop after an authorised shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(status.success(), "authorised shutdown exits 0: {status:?}");
}

#[test]
fn shutdown_drains_and_exits_zero() {
    let mut server = spawn_server("shutdown");
    let addr = server.addr.clone();

    // Put real work through first so the drain has something behind it.
    let (status, _) = http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
    assert_eq!(status, 200);

    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 0);

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("child pollable") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not stop after shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );

    // The listener is gone: a follow-up call fails client-side.
    let mut err = String::new();
    let failed = http_call(&addr, "GET", "/stats", None).is_err() || {
        // A TIME_WAIT race can still accept; tolerate either refusal
        // or an immediately closed connection.
        err.clear();
        std::net::TcpStream::connect(&addr)
            .and_then(|mut s| s.read_to_string(&mut err))
            .map(|n| n == 0)
            .unwrap_or(true)
    };
    assert!(failed, "no server should answer after shutdown");
}
