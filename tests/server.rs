//! End-to-end tests of the `tradeoff-server` binary: ephemeral-port
//! startup, CLI/server byte parity, request coalescing under
//! concurrency, `/stats` accounting, and graceful shutdown.

use report::Json;
use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use unified_tradeoff::server::{http_call, http_request, HttpClient};

/// A running server child, killed on drop so a failing assertion never
/// leaks the process.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(tag: &str) -> ServerGuard {
    spawn_server_with(tag, &[])
}

fn spawn_server_with(tag: &str, extra: &[&str]) -> ServerGuard {
    spawn_server_env(tag, extra, &[])
}

/// Spawns the server binary with extra flags and environment (the
/// fault-injection tests arm `REPRO_FAULTS` in the child only, so the
/// test process itself stays unfaulted).
fn spawn_server_env(tag: &str, extra: &[&str], envs: &[(&str, &str)]) -> ServerGuard {
    let dir =
        std::env::temp_dir().join(format!("tradeoff_server_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr_file = dir.join("addr");
    let mut command = Command::new(env!("CARGO_BIN_EXE_tradeoff-server"));
    command
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "4",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let child = command.spawn().expect("server binary spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim();
            if !text.is_empty() {
                break text.to_string();
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(10));
    };
    ServerGuard { child, addr }
}

/// Runs the CLI binary and returns (exit code, stdout).
fn cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tradeoff-cli"))
        .args(args)
        .output()
        .expect("cli binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

/// A simulate request: its answer requires a timeline extraction, so N
/// concurrent copies exercise the store's key-gate coalescing.
const SIMULATE: &str =
    r#"{"query":"simulate","program":"ear","instructions":50000,"stall":"bnl3"}"#;

#[test]
fn concurrent_queries_coalesce_onto_one_extraction_and_match_the_cli() {
    let server = spawn_server("coalesce");
    let addr = server.addr.clone();

    // A fresh server has done no store work: counters start at zero.
    let (status, body) = http_call(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(body.trim()).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(store.get("timeline_misses").unwrap().as_u64(), Some(0));

    // N concurrent POST /query sharing one trace key.
    const N: usize = 6;
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let (status, body) =
                        http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "all concurrent answers are identical");
    }

    // The acceptance criterion: exactly one extraction for the shared
    // key, every other request served from the memo.
    let (_, body) = http_call(&addr, "GET", "/stats", None).unwrap();
    let stats = Json::parse(body.trim()).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(
        store.get("timeline_misses").unwrap().as_u64(),
        Some(1),
        "N concurrent same-key queries must trigger exactly one extraction: {body}"
    );
    assert_eq!(
        store.get("timeline_hits").unwrap().as_u64(),
        Some((N - 1) as u64)
    );

    // Server latency accounting saw every request.
    let server_stats = stats.get("server").unwrap();
    assert!(server_stats.get("requests").unwrap().as_u64().unwrap() >= (N + 2) as u64);
    let query_stats = server_stats.get("queries").unwrap().get("query").unwrap();
    assert_eq!(query_stats.get("count").unwrap().as_u64(), Some(N as u64));
    assert!(query_stats.get("max_micros").unwrap().as_u64().unwrap() > 0);

    // Byte parity with the CLI, both modes: local dispatch and client.
    let (code, local) = cli(&["query", "--json", SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(
        local, bodies[0],
        "POST /query body and CLI stdout must be byte-identical"
    );
    let (code, remote) = cli(&["query", "--server", &addr, "--json", SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(remote, bodies[0]);

    // GET /experiments is the experiments query verbatim.
    let (status, listing) = http_call(&addr, "GET", "/experiments", None).unwrap();
    assert_eq!(status, 200);
    let (code, cli_listing) = cli(&["query", "--json", r#"{"query":"experiments"}"#]);
    assert_eq!(code, 0);
    assert_eq!(listing, cli_listing);

    // Typed errors reach the client with usage-class exit codes.
    let (code, _) = cli(&[
        "query",
        "--server",
        &addr,
        "--json",
        r#"{"query":"simulate","program":"quake"}"#,
    ]);
    assert_eq!(code, 2, "a server-rejected request is bad usage");
}

/// An inline custom spec — not one of the six builtins.
const INLINE_SIMULATE: &str = r#"{"query":"simulate","workload":{"name":"custom-probe","seed_mix":"0xfeed","pattern":{"kind":"mixture","components":[{"weight":3,"pattern":{"kind":"working_set","base":0,"bytes":16384,"store_fraction":0.3,"elem_size":8}},{"weight":1,"pattern":{"kind":"strided","base":1048576,"region_bytes":65536,"stride":64,"elem_size":8,"store_period":5}}]}},"instructions":30000}"#;

#[test]
fn inline_specs_answer_identically_over_http_and_cli() {
    let server = spawn_server("inline");
    let addr = server.addr.clone();

    // The acceptance criterion: an inline custom spec answers
    // byte-identically via `tradeoff-cli query --json` and POST /query.
    let (status, http_body) = http_call(&addr, "POST", "/query", Some(INLINE_SIMULATE)).unwrap();
    assert_eq!(status, 200, "{http_body}");
    assert!(http_body.contains(r#""query":"simulate""#), "{http_body}");
    let (code, cli_body) = cli(&["query", "--json", INLINE_SIMULATE]);
    assert_eq!(code, 0);
    assert_eq!(
        cli_body, http_body,
        "inline-spec answers must be byte-identical across frontends"
    );

    // The workloads catalogue is served through the same dispatch.
    let (status, listing) =
        http_call(&addr, "POST", "/query", Some(r#"{"query":"workloads"}"#)).unwrap();
    assert_eq!(status, 200);
    assert!(listing.contains("hydro2d"), "{listing}");

    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 0);
}

#[test]
fn shutdown_token_gates_remote_stops() {
    let mut server = spawn_server_with("token", &["--shutdown-token", "s3cret"]);
    let addr = server.addr.clone();

    // Without the token the stop is refused — 403, usage-class exit.
    let (status, body) = http_call(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("forbidden"), "{body}");
    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 2, "a refused shutdown is usage-class at the CLI");
    let (status, body) =
        http_call(&addr, "POST", "/shutdown", Some(r#"{"token":"wrong"}"#)).unwrap();
    assert_eq!(status, 403, "{body}");

    // The server kept serving through all of that.
    let (status, _) = http_call(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);

    // With the token the stop drains and the process exits 0.
    let (code, _) = cli(&[
        "query",
        "--server",
        &addr,
        "--shutdown",
        "--token",
        "s3cret",
    ]);
    assert_eq!(code, 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("child pollable") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not stop after an authorised shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(status.success(), "authorised shutdown exits 0: {status:?}");
}

#[test]
fn shutdown_drains_and_exits_zero() {
    let mut server = spawn_server("shutdown");
    let addr = server.addr.clone();

    // Put real work through first so the drain has something behind it.
    let (status, _) = http_call(&addr, "POST", "/query", Some(SIMULATE)).unwrap();
    assert_eq!(status, 200);

    let (code, _) = cli(&["query", "--server", &addr, "--shutdown"]);
    assert_eq!(code, 0);

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("child pollable") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not stop after shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );

    // The listener is gone: a follow-up call fails client-side.
    let mut err = String::new();
    let failed = http_call(&addr, "GET", "/stats", None).is_err() || {
        // A TIME_WAIT race can still accept; tolerate either refusal
        // or an immediately closed connection.
        err.clear();
        std::net::TcpStream::connect(&addr)
            .and_then(|mut s| s.read_to_string(&mut err))
            .map(|n| n == 0)
            .unwrap_or(true)
    };
    assert!(failed, "no server should answer after shutdown");
}

/// A cheap analytic query, used where the test wants a fast round trip.
const PRICE: &str = r#"{"query":"price","hr":0.95}"#;

/// Fetches the parsed `/stats` document.
fn stats_doc(addr: &str) -> Json {
    let (status, body) = http_call(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{body}");
    Json::parse(body.trim()).expect("stats is valid JSON")
}

#[test]
fn a_poisoned_query_answers_500_and_leaves_the_pool_intact() {
    // One armed handler panic, two workers: the first query is
    // poisoned, everything after it must still be served by a
    // full-size pool.
    let server = spawn_server_env(
        "panic",
        &["--threads", "2"],
        &[("REPRO_FAULTS", "dispatch:serve:panic:1")],
    );
    let addr = server.addr.clone();

    let (status, body) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("internal"), "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The regression: capacity is intact. Both workers still answer,
    // and /stats asserts the pool invariant.
    for _ in 0..4 {
        let (status, body) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
        assert_eq!(
            status, 200,
            "a poisoned query must not shrink the pool: {body}"
        );
    }
    let stats = stats_doc(&addr);
    let srv = stats.get("server").unwrap();
    assert_eq!(srv.get("panics_contained").unwrap().as_u64(), Some(1));
    let pool = srv.get("pool").unwrap();
    assert_eq!(
        pool.get("alive").unwrap().as_u64(),
        pool.get("size").unwrap().as_u64(),
        "pool size is an invariant: {stats:?}"
    );
    assert_eq!(pool.get("size").unwrap().as_u64(), Some(2));
}

#[test]
fn a_hung_handler_answers_504_deadline_exceeded() {
    // One armed 60 s hang against a 500 ms request budget: the watchdog
    // abandons the handler and answers 504 instead of wedging a worker.
    let server = spawn_server_env(
        "hang",
        &["--threads", "2", "--request-timeout", "0.5"],
        &[("REPRO_FAULTS", "dispatch:serve:delay60000:1")],
    );
    let addr = server.addr.clone();

    let started = Instant::now();
    let (status, body) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline-exceeded"), "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the 504 must arrive at the deadline, not after the hang"
    );

    // The worker that hit the hang is still serving.
    let (status, _) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(status, 200);
    let stats = stats_doc(&addr);
    let srv = stats.get("server").unwrap();
    assert!(srv.get("deadline_timeouts").unwrap().as_u64().unwrap() >= 1);
    let pool = srv.get("pool").unwrap();
    assert_eq!(
        pool.get("alive").unwrap().as_u64(),
        pool.get("size").unwrap().as_u64()
    );
}

#[test]
fn the_deadline_header_lowers_the_budget_per_request() {
    // A generous server budget, but the client asks for 1 ms and hits
    // an armed 2 s slow-read: only this request times out.
    let server = spawn_server_env(
        "hdr",
        &["--threads", "2"],
        &[("REPRO_FAULTS", "dispatch:serve:delay2000:1")],
    );
    let addr = server.addr.clone();

    let mut client = HttpClient::connect(&addr).unwrap();
    let reply = client
        .call_with_headers("POST", "/query", Some(PRICE), "X-Request-Timeout-Ms: 1\r\n")
        .unwrap();
    assert_eq!(reply.status, 504, "{}", reply.body);

    // Without the header the same budget-free request succeeds.
    let (status, _) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(status, 200);
}

#[test]
fn keepalive_connections_are_reused_and_counted() {
    let server = spawn_server("keepalive");
    let addr = server.addr.clone();

    const CALLS: usize = 5;
    let mut client = HttpClient::connect(&addr).unwrap();
    let first = client.call("POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    for _ in 1..CALLS {
        let again = client.call("POST", "/query", Some(PRICE)).unwrap();
        assert_eq!(again.status, 200);
        assert_eq!(again.body, first.body, "keep-alive answers are stable");
    }

    let stats = stats_doc(&addr);
    let conns = stats.get("server").unwrap().get("connections").unwrap();
    assert!(
        conns.get("keepalive_reuses").unwrap().as_u64().unwrap() >= (CALLS - 1) as u64,
        "{stats:?}"
    );
    // One persistent connection carried all five queries.
    assert!(
        conns.get("accepted").unwrap().as_u64().unwrap() <= 3,
        "{stats:?}"
    );
}

#[test]
fn cli_retries_ride_out_accept_sheds_until_success() {
    // The first two accepted connections are shed with 503 +
    // Retry-After; a retrying CLI client must land on the third
    // attempt and still get byte-identical output.
    let server = spawn_server_env(
        "retry",
        &["--threads", "2"],
        &[("REPRO_FAULTS", "accept:serve:io:2")],
    );
    let addr = server.addr.clone();

    let (code, remote) = cli(&[
        "query",
        "--server",
        &addr,
        "--retries",
        "4",
        "--json",
        PRICE,
    ]);
    assert_eq!(code, 0, "retries must ride out the sheds: {remote}");
    let (code, local) = cli(&["query", "--json", PRICE]);
    assert_eq!(code, 0);
    assert_eq!(remote, local, "retried answers keep byte parity");

    let stats = stats_doc(&addr);
    let srv = stats.get("server").unwrap();
    let overload = srv.get("overload").unwrap();
    assert_eq!(overload.get("sheds_accept").unwrap().as_u64(), Some(2));

    // With retries disabled the same shed is a hard failure.
    let server2 = spawn_server_env(
        "retry0",
        &["--threads", "2"],
        &[("REPRO_FAULTS", "accept:serve:io:1")],
    );
    let (code, _) = cli(&[
        "query",
        "--server",
        &server2.addr,
        "--retries",
        "0",
        "--json",
        PRICE,
    ]);
    assert_eq!(code, 1, "a shed without retries is a failure-class exit");
}

#[test]
fn a_slow_loris_peer_is_reaped_by_the_idle_deadline() {
    let server = spawn_server_with("loris", &["--threads", "2", "--idle-timeout", "0.3"]);
    let addr = server.addr.clone();

    // Trickle half a request, then stall past the idle gap.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"POST /query HTTP/1.1\r\nContent-Le")
        .unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(1200));

    // The server closed on us without a response…
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a reaped connection gets no bytes: {buf:?}");

    // …and no worker was consumed: the pool still answers instantly.
    let (status, _) = http_call(&addr, "POST", "/query", Some(PRICE)).unwrap();
    assert_eq!(status, 200);
    let stats = stats_doc(&addr);
    let conns = stats.get("server").unwrap().get("connections").unwrap();
    assert!(
        conns.get("reaped").unwrap().as_u64().unwrap() >= 1,
        "{stats:?}"
    );
}

#[test]
fn overload_sheds_expensive_queries_with_retry_after() {
    // One worker, zero queue watermark: concurrent expensive queries
    // must produce at least one deterministic 503 with Retry-After
    // while the server keeps answering cheap requests.
    let server = spawn_server_with("overload", &["--threads", "1", "--queue", "0"]);
    let addr = server.addr.clone();

    const N: usize = 6;
    let outcomes: Vec<(u16, Option<u64>, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let addr = addr.clone();
                s.spawn(move || {
                    // Distinct instruction counts: no store coalescing,
                    // every query is real work.
                    let body = format!(
                        r#"{{"query":"simulate","program":"ear","instructions":{}}}"#,
                        30_000 + 1_000 * i
                    );
                    let reply = http_request(&addr, "POST", "/query", Some(&body)).unwrap();
                    (reply.status, reply.retry_after, reply.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let sheds: Vec<_> = outcomes.iter().filter(|(s, _, _)| *s == 503).collect();
    let served = outcomes.iter().filter(|(s, _, _)| *s == 200).count();
    assert!(served >= 1, "someone must be served: {outcomes:?}");
    assert!(!sheds.is_empty(), "someone must be shed: {outcomes:?}");
    for (_, retry_after, body) in &sheds {
        assert_eq!(*retry_after, Some(1), "sheds carry Retry-After: {body}");
        assert!(body.contains("overloaded"), "{body}");
    }

    // Cheap requests are admitted even under the same pressure.
    let stats = stats_doc(&addr);
    let srv = stats.get("server").unwrap();
    let overload = srv.get("overload").unwrap();
    assert_eq!(
        overload.get("sheds_dispatch").unwrap().as_u64(),
        Some(sheds.len() as u64),
        "{stats:?}"
    );
}
