//! Closed-form backend oracle: the [`Analytic`] hit-ratio backend built
//! from streaming reuse-distance histograms must be *bit-exact* against
//! live `Cache` replay for fully-associative LRU geometries (Mattson
//! inclusion makes the histogram prefix an exact answer, not an
//! estimate), stay within [`SET_CONFLICT_TOLERANCE`] of the
//! [`StackDistSweep`] simulator for set-associative geometries, and be
//! invariant to how the trace was chunked on its way in.

use bench::stream::{self, FoldSink};
use proptest::prelude::*;
use simcache::explore::measure_dcache;
use simcache::hitratio::{Analytic, HitRatioBackend, Simulated, SET_CONFLICT_TOLERANCE};
use simcache::stackdist::StackDistSweep;
use simcache::CacheConfig;
use simtrace::instr::MemRef;
use simtrace::reusehist::ReuseHistograms;
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;

/// A random reference stream over a bounded address space — small
/// enough that capacities in the test grid actually see reuse.
fn streams() -> impl Strategy<Value = Vec<(bool, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..16 * 1024), 1..600)
}

fn instrs(stream: &[(bool, u64)]) -> Vec<Instr> {
    stream
        .iter()
        .enumerate()
        .map(|(i, &(is_store, addr))| {
            let addr = addr & !3; // 4-byte aligned
            let m = if is_store {
                MemRef::store(addr, 4)
            } else {
                MemRef::load(addr, 4)
            };
            Instr::mem((i as u64) * 4, m)
        })
        .collect()
}

proptest! {
    /// Fully-associative LRU: the analytic backend and a live `Cache`
    /// replay are the same integer division — equality is `==` on the
    /// floats, no tolerance.
    #[test]
    fn analytic_fa_lru_is_bit_equal_to_replay(stream in streams()) {
        let trace = instrs(&stream);
        let mut fold = ReuseHistograms::new(16, 64, 4_096, 0);
        fold.process_slice(&trace);
        let analytic = Analytic::from_histograms(&fold);
        for (line_bytes, lines) in [(16u64, 4u32), (16, 64), (32, 16), (64, 8)] {
            let cfg = CacheConfig::new(line_bytes * u64::from(lines), line_bytes, lines)
                .expect("fully associative");
            let replay = measure_dcache(cfg, trace.iter().copied(), 0).hit_ratio();
            let closed = analytic
                .fa_hit_ratio(line_bytes, u64::from(lines))
                .expect("covered granularity");
            prop_assert!(
                closed == replay,
                "L={line_bytes} cap={lines}: analytic {closed} != replay {replay}"
            );
        }
    }

    /// The `HitRatioBackend` entry point routes `sets == 1` geometries
    /// through the same exact fully-associative path.
    #[test]
    fn backend_trait_is_exact_for_single_set_geometries(stream in streams()) {
        let trace = instrs(&stream);
        let mut fold = ReuseHistograms::new(32, 32, 4_096, 0);
        fold.process_slice(&trace);
        let analytic = Analytic::from_histograms(&fold);
        for assoc in [2u32, 8, 32] {
            let cache_bytes = 32 * u64::from(assoc); // sets == 1
            let cfg = CacheConfig::new(cache_bytes, 32, assoc).expect("valid");
            let replay = measure_dcache(cfg, trace.iter().copied(), 0).hit_ratio();
            let closed = analytic.hit_ratio(cache_bytes, 32, assoc).expect("covered");
            prop_assert!(
                closed == replay,
                "assoc={assoc}: analytic {closed} != replay {replay}"
            );
        }
    }
}

/// Set-associative geometries: the binomial set-conflict model carries
/// a stated tolerance, checked here against the exact simulator across
/// seeded SPEC92 proxies and a grid of real geometries.
#[test]
fn set_conflict_model_tracks_the_sweep_within_tolerance() {
    const N: usize = 6_000;
    const WARMUP: u64 = 1_200;
    for (program, seed) in [
        (Spec92Program::Nasa7, 7u64),
        (Spec92Program::Ear, 11),
        (Spec92Program::Swm256, 3),
        (Spec92Program::Hydro2d, 31),
    ] {
        let trace: Vec<Instr> = spec92_trace(program, seed).take(N).collect();
        let mut fold = ReuseHistograms::new(16, 64, 1 << 14, WARMUP);
        fold.process_slice(&trace);
        let analytic = Analytic::from_histograms(&fold);
        let simulated = Simulated::from_sweeps(
            [16u64, 32, 64]
                .iter()
                .map(|&line| {
                    StackDistSweep::run(line, 7, 4, WARMUP, trace.iter().copied())
                        .expect("valid sweep geometry")
                })
                .collect(),
        );
        for line_bytes in [16u64, 32, 64] {
            for sets_log2 in [1u32, 3, 5, 7] {
                for assoc in [1u32, 2, 4] {
                    let cache_bytes = (1u64 << sets_log2) * line_bytes * u64::from(assoc);
                    let sim = simulated
                        .hit_ratio(cache_bytes, line_bytes, assoc)
                        .expect("sweep covers the grid");
                    let closed = analytic
                        .hit_ratio(cache_bytes, line_bytes, assoc)
                        .expect("histograms cover the grid");
                    let delta = (sim - closed).abs();
                    assert!(
                        delta <= SET_CONFLICT_TOLERANCE,
                        "{program} L={line_bytes} sets=2^{sets_log2} assoc={assoc}: \
                         |{closed} - {sim}| = {delta} exceeds {SET_CONFLICT_TOLERANCE}"
                    );
                }
            }
        }
    }
}

/// The histogram fold is chunk-invariant end to end through the
/// streaming pipeline: any `REPRO_STREAM_CHUNK`-style partition, fed
/// through either `fold_slice` or `broadcast`, yields bit-identical
/// profiles — and therefore a bit-identical analytic backend.
#[test]
fn chunked_histogram_folds_are_bit_identical_to_whole_trace() {
    const N: usize = 9_000;
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Doduc, 13).take(N).collect();
    let mut whole = ReuseHistograms::new(8, 128, 4_096, 2_000);
    whole.process_slice(&trace);
    let reference = Analytic::from_histograms(&whole);

    for chunk in [1usize, 117, 2_000, 4_096, N + 1] {
        let sliced = stream::fold_slice(
            &trace,
            chunk,
            vec![FoldSink::Hist(ReuseHistograms::new(8, 128, 4_096, 2_000))],
        );
        let [sliced]: [_; 1] = sliced.try_into().expect("one fold");
        let sliced = sliced.into_histograms();
        let streamed = stream::broadcast(
            trace.iter().copied(),
            chunk,
            vec![FoldSink::Hist(ReuseHistograms::new(8, 128, 4_096, 2_000))],
        );
        let [streamed]: [_; 1] = streamed.try_into().expect("one fold");
        let streamed = streamed.into_histograms();
        for line in whole.line_sizes() {
            assert_eq!(sliced.profile(line), whole.profile(line), "chunk={chunk}");
            assert_eq!(streamed.profile(line), whole.profile(line), "chunk={chunk}");
            assert_eq!(sliced.set_mass(line), whole.set_mass(line), "chunk={chunk}");
        }
        // Same histograms → same closed-form answers.
        let rebuilt = Analytic::from_histograms(&sliced);
        for (line, lines) in [(16u64, 32u64), (32, 128), (64, 64)] {
            assert_eq!(
                rebuilt.fa_hit_ratio(line, lines).expect("covered"),
                reference.fa_hit_ratio(line, lines).expect("covered"),
                "chunk={chunk} L={line} cap={lines}"
            );
        }
    }
}
