//! Cross-validation oracle: Mattson's stack algorithm (reuse-distance
//! profile in `simtrace`) must predict the fully-associative LRU cache
//! simulator (`simcache`) *exactly*, reference for reference — and the
//! single-pass [`StackDistSweep`] must reproduce per-configuration
//! `Cache` replays bit for bit across whole geometry grids.

use simcache::explore::measure_dcache;
use simtrace::gen::{PatternTrace, StridedSweep, TraceShape, ZipfWorkingSet};
use simtrace::reuse::ReuseProfile;
use simtrace::spec92::{spec92_trace, Spec92Program};
use unified_tradeoff::prelude::*;

fn fa_lru(lines: u64) -> Cache {
    Cache::new(CacheConfig::new(lines * 32, 32, lines as u32).expect("fully associative"))
}

fn check_exact(trace: &[Instr], capacities: &[usize]) {
    let profile = ReuseProfile::from_trace(trace.iter().copied(), 32, 512);
    for &lines in capacities {
        let mut cache = fa_lru(lines as u64);
        let (mut hits, mut refs) = (0u64, 0u64);
        for i in trace {
            if let Some(m) = i.mem {
                refs += 1;
                if cache.access(m.op, m.addr).hit {
                    hits += 1;
                }
            }
        }
        let simulated = hits as f64 / refs as f64;
        let predicted = profile.lru_hit_ratio(lines);
        assert!(
            (simulated - predicted).abs() < 1e-12,
            "k={lines}: simulator {simulated} vs Mattson {predicted}"
        );
    }
}

#[test]
fn mattson_predicts_the_simulator_on_zipf_reuse() {
    let trace: Vec<Instr> = PatternTrace::new(
        ZipfWorkingSet::new(0, 4 * 1024, 8, 1.0, 0.2),
        TraceShape::default(),
        3,
    )
    .take(20_000)
    .collect();
    check_exact(&trace, &[4, 8, 16, 32, 64]);
}

#[test]
fn mattson_predicts_the_simulator_on_strided_sweeps() {
    let trace: Vec<Instr> = PatternTrace::new(
        StridedSweep::new(0, 8 * 1024, 8, 8, 3),
        TraceShape::default(),
        5,
    )
    .take(15_000)
    .collect();
    check_exact(&trace, &[2, 16, 128, 256, 512]);
}

#[test]
fn mattson_predicts_the_simulator_on_a_spec_proxy() {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Ear, 11).take(15_000).collect();
    check_exact(&trace, &[8, 64, 256]);
}

/// Replays every `(2^k sets, assoc)` geometry of the grid through a
/// live `Cache` and demands the one-pass sweep agrees on the *complete*
/// statistics — same integer counters, and hit/flush ratios within
/// 1e-12 (they are the same division, so in practice identical bits).
fn check_sweep_exact(trace: &[Instr], line_bytes: u64, warmup: u64) {
    let max_assoc = 4;
    let sweep = StackDistSweep::run(line_bytes, 7, max_assoc, warmup, trace.iter().copied())
        .expect("valid sweep geometry");
    for k in [0u32, 2, 5, 7] {
        for assoc in [1u32, 2, 4] {
            let cache_bytes = (1u64 << k) * line_bytes * u64::from(assoc);
            let cfg = CacheConfig::new(cache_bytes, line_bytes, assoc).expect("valid config");
            let replay = measure_dcache(cfg, trace.iter().copied(), warmup);
            let swept = sweep.stats_for(&cfg).expect("geometry covered");
            assert_eq!(swept, replay, "L={line_bytes} sets=2^{k} assoc={assoc}");
            assert!((swept.hit_ratio() - replay.hit_ratio()).abs() < 1e-12);
            assert!((swept.flush_ratio() - replay.flush_ratio()).abs() < 1e-12);
        }
    }
}

#[test]
fn sweep_matches_replay_on_zipf_reuse() {
    let trace: Vec<Instr> = PatternTrace::new(
        ZipfWorkingSet::new(0, 16 * 1024, 8, 1.0, 0.25),
        TraceShape::default(),
        17,
    )
    .take(20_000)
    .collect();
    check_sweep_exact(&trace, 16, 4_000);
    check_sweep_exact(&trace, 32, 4_000);
}

#[test]
fn sweep_matches_replay_on_strided_sweeps() {
    let trace: Vec<Instr> = PatternTrace::new(
        StridedSweep::new(0, 32 * 1024, 8, 12, 9),
        TraceShape::default(),
        23,
    )
    .take(15_000)
    .collect();
    check_sweep_exact(&trace, 32, 2_500);
}

#[test]
fn sweep_matches_replay_on_spec_proxies() {
    for (program, seed) in [(Spec92Program::Ear, 29), (Spec92Program::Hydro2d, 31)] {
        let trace: Vec<Instr> = spec92_trace(program, seed).take(15_000).collect();
        // Both with and without a warm-up window.
        check_sweep_exact(&trace, 32, 3_000);
        check_sweep_exact(&trace, 32, 0);
    }
}

#[test]
fn set_associativity_only_loses_against_full_associativity() {
    // A set-associative cache of the same capacity can only do worse
    // than the Mattson bound (conflict misses), never better.
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Doduc, 13)
        .take(20_000)
        .collect();
    let profile = ReuseProfile::from_trace(trace.iter().copied(), 32, 512);
    for (lines, assoc) in [(64u64, 2u32), (256, 2), (256, 4)] {
        let mut cache = Cache::new(CacheConfig::new(lines * 32, 32, assoc).expect("valid"));
        let (mut hits, mut refs) = (0u64, 0u64);
        for i in &trace {
            if let Some(m) = i.mem {
                refs += 1;
                if cache.access(m.op, m.addr).hit {
                    hits += 1;
                }
            }
        }
        let simulated = hits as f64 / refs as f64;
        let bound = profile.lru_hit_ratio(lines as usize);
        assert!(
            simulated <= bound + 1e-12,
            "{lines} lines {assoc}-way: {simulated} beat the FA bound {bound}"
        );
    }
}
