//! Cross-validation oracle: Mattson's stack algorithm (reuse-distance
//! profile in `simtrace`) must predict the fully-associative LRU cache
//! simulator (`simcache`) *exactly*, reference for reference.

use simtrace::gen::{PatternTrace, StridedSweep, TraceShape, ZipfWorkingSet};
use simtrace::reuse::ReuseProfile;
use simtrace::spec92::{spec92_trace, Spec92Program};
use unified_tradeoff::prelude::*;

fn fa_lru(lines: u64) -> Cache {
    Cache::new(CacheConfig::new(lines * 32, 32, lines as u32).expect("fully associative"))
}

fn check_exact(trace: &[Instr], capacities: &[usize]) {
    let profile = ReuseProfile::from_trace(trace.iter().copied(), 32, 512);
    for &lines in capacities {
        let mut cache = fa_lru(lines as u64);
        let (mut hits, mut refs) = (0u64, 0u64);
        for i in trace {
            if let Some(m) = i.mem {
                refs += 1;
                if cache.access(m.op, m.addr).hit {
                    hits += 1;
                }
            }
        }
        let simulated = hits as f64 / refs as f64;
        let predicted = profile.lru_hit_ratio(lines);
        assert!(
            (simulated - predicted).abs() < 1e-12,
            "k={lines}: simulator {simulated} vs Mattson {predicted}"
        );
    }
}

#[test]
fn mattson_predicts_the_simulator_on_zipf_reuse() {
    let trace: Vec<Instr> = PatternTrace::new(
        ZipfWorkingSet::new(0, 4 * 1024, 8, 1.0, 0.2),
        TraceShape::default(),
        3,
    )
    .take(20_000)
    .collect();
    check_exact(&trace, &[4, 8, 16, 32, 64]);
}

#[test]
fn mattson_predicts_the_simulator_on_strided_sweeps() {
    let trace: Vec<Instr> = PatternTrace::new(
        StridedSweep::new(0, 8 * 1024, 8, 8, 3),
        TraceShape::default(),
        5,
    )
    .take(15_000)
    .collect();
    check_exact(&trace, &[2, 16, 128, 256, 512]);
}

#[test]
fn mattson_predicts_the_simulator_on_a_spec_proxy() {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Ear, 11).take(15_000).collect();
    check_exact(&trace, &[8, 64, 256]);
}

#[test]
fn set_associativity_only_loses_against_full_associativity() {
    // A set-associative cache of the same capacity can only do worse
    // than the Mattson bound (conflict misses), never better.
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Doduc, 13).take(20_000).collect();
    let profile = ReuseProfile::from_trace(trace.iter().copied(), 32, 512);
    for (lines, assoc) in [(64u64, 2u32), (256, 2), (256, 4)] {
        let mut cache = Cache::new(CacheConfig::new(lines * 32, 32, assoc).expect("valid"));
        let (mut hits, mut refs) = (0u64, 0u64);
        for i in &trace {
            if let Some(m) = i.mem {
                refs += 1;
                if cache.access(m.op, m.addr).hit {
                    hits += 1;
                }
            }
        }
        let simulated = hits as f64 / refs as f64;
        let bound = profile.lru_hit_ratio(lines as usize);
        assert!(
            simulated <= bound + 1e-12,
            "{lines} lines {assoc}-way: {simulated} beat the FA bound {bound}"
        );
    }
}
