//! Smoke tests over the experiment harness: every table/figure module
//! produces a sane report at reduced instruction counts.

use bench::unified::{FIG3, FIG4, FIG5};

#[test]
fn tables_2_and_3_render() {
    let text = bench::table23::main_report();
    assert!(text.contains("Table 2") && text.contains("Table 3"));
    assert!(text.contains("doubling bus"));
}

#[test]
fn figure1_small_run_has_ordered_curves() {
    let curves = bench::fig1::run(32, 4, 8_000);
    assert_eq!(curves.len(), 4);
    for c in &curves {
        assert_eq!(c.points.len(), bench::fig1::BETAS.len());
    }
}

#[test]
fn figure2_report_renders_both_panels() {
    let text = bench::fig2::main_report();
    assert_eq!(text.matches("Figure 2").count(), 2);
    assert!(text.contains("L=8") && text.contains("L=32"));
}

#[test]
fn unified_figures_render() {
    for cfg in [FIG3, FIG4, FIG5] {
        let curves = bench::unified::run(cfg, &[2, 8], 5_000).expect("valid");
        let text = bench::unified::render(cfg, &curves);
        assert!(text.contains(&format!("Figure {}", cfg.figure)));
        assert!(text.contains("doubling bus"));
    }
}

#[test]
fn figure6_report_validates() {
    let text = bench::fig6::main_report();
    assert!(text.contains("(a)") && text.contains("(d)"));
    assert!(
        !text.contains("false"),
        "all panels must agree with Smith:\n{text}"
    );
}

#[test]
fn example1_crossover_linesize_validate_render() {
    assert!(bench::example1::main_report().contains("Case 2"));
    assert!(bench::xover::main_report().contains("never"));
    let v = bench::validate::run(4_000);
    assert!(v.iter().all(|r| r.rel_error < 1e-9));
}
