//! Property-based tests of the CPU timing simulator: for *arbitrary*
//! traces and configurations the Eq. 2 identity and the Table 2 bounds
//! must hold.

use proptest::prelude::*;
use unified_tradeoff::prelude::*;
use unified_tradeoff::simcpu::{validation_error, L2Config};

fn traces() -> impl Strategy<Value = Vec<Instr>> {
    // Mixed loads/stores/plains over a bounded region, word-aligned.
    proptest::collection::vec((0u8..3, 0u64..64 * 1024), 1..400).prop_map(|ops| {
        ops.into_iter()
            .enumerate()
            .map(|(i, (kind, addr))| {
                let pc = (i as u64) * 4;
                match kind {
                    0 => Instr::plain(pc),
                    1 => Instr::mem(pc, MemRef::load(addr & !3, 4)),
                    _ => Instr::mem(pc, MemRef::store(addr & !3, 4)),
                }
            })
            .collect()
    })
}

fn stalls() -> impl Strategy<Value = StallFeature> {
    prop_oneof![
        Just(StallFeature::FullStall),
        Just(StallFeature::BusLocked),
        Just(StallFeature::BusNotLocked1),
        Just(StallFeature::BusNotLocked2),
        Just(StallFeature::BusNotLocked3),
        (1u32..4).prop_map(|m| StallFeature::NonBlocking { mshrs: m }),
    ]
}

fn configs() -> impl Strategy<Value = CpuConfig> {
    (
        stalls(),
        prop_oneof![Just(4u64), Just(8)],             // bus
        prop_oneof![Just(16u64), Just(32), Just(64)], // line
        2u64..30,                                     // beta
        any::<bool>(),                                // write buffer
        any::<bool>(),                                // write-around
        prop_oneof![Just(1u32), Just(2), Just(4)],    // issue width
        any::<bool>(),                                // prefetch
        any::<bool>(),                                // l2
    )
        .prop_map(|(stall, bus, line, beta, wbuf, around, width, pf, l2)| {
            let line = line.max(bus);
            let mut dcache = CacheConfig::new(2 * 1024, line, 2).expect("valid");
            if around {
                dcache = dcache.with_write_miss(WriteMiss::Around);
            }
            let mut cfg = CpuConfig::baseline(
                dcache,
                MemoryTiming::new(BusWidth::new(bus).expect("valid"), beta),
            )
            .with_stall(stall)
            .with_issue_width(width);
            if wbuf {
                cfg = cfg.with_write_buffer(WriteBufferConfig::default());
            }
            if pf {
                cfg = cfg.with_prefetch(Prefetch::NextLine);
            }
            if l2 {
                cfg = cfg.with_l2(L2Config::new(
                    CacheConfig::new(16 * 1024, line, 4).expect("valid"),
                    2,
                ));
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Eq. 2 identity holds for every random trace × configuration.
    #[test]
    fn identity_holds_universally(trace in traces(), cfg in configs()) {
        let r = Cpu::new(cfg).run(trace.iter().copied());
        prop_assert!(validation_error(&r) < 1e-9, "cfg {cfg:?}: err {}", validation_error(&r));
        prop_assert_eq!(r.instructions, trace.len() as u64);
    }

    /// The measured φ stays within Table 2's feature band.
    #[test]
    fn phi_respects_table2(trace in traces(), cfg in configs()) {
        // Prefetch wait-stalls are charged to the miss account and can
        // push the effective φ past L/D; restrict to the paper's setup.
        let mut cfg = cfg;
        cfg.prefetch = Prefetch::None;
        let chunks = (cfg.dcache.line_bytes() / cfg.timing.bus().bytes()) as f64;
        let r = Cpu::new(cfg).run(trace.iter().copied());
        if r.dcache.fills > 0 {
            let phi = r.phi();
            prop_assert!(phi >= 0.0, "{phi}");
            // Queueing behind flushes can exceed the ideal L/D bound by
            // the flush service share; allow the documented slack of one
            // full line transfer per miss.
            prop_assert!(phi <= 2.0 * chunks + 1.0, "φ = {phi}, L/D = {chunks}");
        }
    }

    /// Cycles are monotone in β_m: slower memory can never speed a run up.
    #[test]
    fn cycles_monotone_in_beta(trace in traces(), stall in stalls()) {
        let run = |beta: u64| {
            let cfg = CpuConfig::baseline(
                CacheConfig::new(2 * 1024, 32, 2).expect("valid"),
                MemoryTiming::new(BusWidth::new(4).expect("valid"), beta),
            )
            .with_stall(stall);
            Cpu::new(cfg).run(trace.iter().copied()).cycles
        };
        prop_assert!(run(4) <= run(8));
        prop_assert!(run(8) <= run(16));
    }

    /// Determinism: the same trace and configuration always produce the
    /// same result.
    #[test]
    fn simulation_is_deterministic(trace in traces(), cfg in configs()) {
        let a = Cpu::new(cfg).run(trace.iter().copied());
        let b = Cpu::new(cfg).run(trace.iter().copied());
        prop_assert_eq!(a, b);
    }
}
