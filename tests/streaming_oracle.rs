//! Streaming-vs-monolithic oracle: the chunked pipeline (`bench::stream`,
//! the streaming trace store, the streaming sweep engine) must be
//! byte-identical to the whole-trace paths — serially, under `--jobs N`,
//! and with an armed fault plan degrading the run. "Byte-identical"
//! is literal: suite documents and CSV artifacts are compared as
//! rendered bytes, folded stats as exact values.

use bench::fault::{self, FaultKind, FaultPlan, Site};
use bench::registry::RunCtx;
use bench::sched::{run_suite, RetryPolicy, SuiteOptions};
use bench::stream::{self, FoldOut, FoldSink};
use bench::sweep::{artifact, run_sweep, SweepGrid, SWEEP_SEED};
use simcache::explore::hit_ratio_grid_replay;
use simcache::stackdist::StackDistSweep;
use simcpu::{MissTimeline, MissTimelineBuilder};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;
use std::time::Duration;

const N: usize = 6_000;

fn opts(jobs: usize) -> SuiteOptions {
    let mut o = SuiteOptions::new(jobs, RunCtx::with_instructions(2_000))
        .keep_going(true)
        .with_timeout(None);
    o.retry = RetryPolicy {
        max_retries: 3,
        backoff: Duration::ZERO,
    };
    o
}

#[test]
fn streaming_sweep_matches_per_config_replay() {
    // The whole-trace oracle is the independent per-configuration
    // replay, not another sweep: agreement here checks the chunked
    // fold end to end, not merely that two code paths share bugs.
    let grid = SweepGrid {
        cache_sizes: vec![1024, 4096, 16 * 1024],
        line_sizes: vec![16, 32, 64],
        assoc: 2,
        warmup: 1_000,
    };
    let programs = [Spec92Program::Swm256, Spec92Program::Doduc];
    for ws in run_sweep(&programs, &grid, N) {
        let replay = hit_ratio_grid_replay(
            &grid.cache_sizes,
            &grid.line_sizes,
            grid.assoc,
            || spec92_trace(ws.program, SWEEP_SEED).take(N),
            grid.warmup,
        )
        .unwrap();
        assert_eq!(ws.points, replay, "{}", ws.program);
    }
}

#[test]
fn streaming_timeline_matches_whole_trace_extraction() {
    let cache = bench::common::figure1_cache(32);
    let seed = 0x04AC1E;
    let whole: Vec<Instr> = spec92_trace(Spec92Program::Ear, seed).take(N).collect();
    let oracle = MissTimeline::extract(cache, whole.iter().copied());
    // Cold store lookup streams chunk by chunk — identical timeline.
    let streamed = bench::tracestore::spec_timeline(Spec92Program::Ear, seed, N, &cache);
    assert_eq!(*streamed, oracle);
    // A mixed one-pass pipeline folds the same timeline again.
    let out = stream::broadcast(
        spec92_trace(Spec92Program::Ear, seed).take(N),
        1_024,
        vec![
            FoldSink::Timeline(MissTimelineBuilder::new(cache)),
            FoldSink::Sweep(StackDistSweep::new(32, 5, 2, 1_000).unwrap()),
        ],
    );
    match &out[0] {
        FoldOut::Timeline(t) => assert_eq!(*t, oracle),
        _ => panic!("sink order preserved"),
    }
}

#[test]
fn streamed_suite_documents_match_serially_and_in_parallel() {
    // fig1 exercises the streaming timeline store, sweep the streaming
    // fold engine; their documents and artifacts must not depend on the
    // worker count.
    let selection: Vec<_> = bench::registry::all()
        .into_iter()
        .filter(|e| e.id() == "fig1" || e.id() == "sweep" || e.id() == "fig6")
        .collect();
    assert_eq!(selection.len(), 3);
    let serial = {
        let _armed = fault::arm(FaultPlan::new());
        run_suite(&selection, &opts(1))
    };
    let parallel = {
        let _armed = fault::arm(FaultPlan::new());
        run_suite(&selection, &opts(4))
    };
    assert!(!serial.has_failures() && !parallel.has_failures());
    assert_eq!(serial.document(), parallel.document());
}

#[test]
fn streamed_suite_survives_an_armed_fault_plan_byte_identically() {
    // Faults at the store's lock and extract sites unwind inside the
    // streaming paths; retries must recover to the clean document under
    // any worker count.
    let plan = || {
        FaultPlan::new()
            .with(Site::Lock, "fig1", FaultKind::Io, 1)
            .with(Site::Extract, "sweep", FaultKind::Io, 1)
    };
    let selection: Vec<_> = bench::registry::all()
        .into_iter()
        .filter(|e| e.id() == "fig1" || e.id() == "sweep")
        .collect();
    let clean = {
        let _armed = fault::arm(FaultPlan::new());
        run_suite(&selection, &opts(1))
    };
    let faulted_serial = {
        let _armed = fault::arm(plan());
        run_suite(&selection, &opts(1))
    };
    let faulted_parallel = {
        let _armed = fault::arm(plan());
        run_suite(&selection, &opts(4))
    };
    assert!(!faulted_serial.has_failures(), "faults retried, not fatal");
    assert!(faulted_serial.degraded());
    assert_eq!(clean.document(), faulted_serial.document());
    assert_eq!(clean.document(), faulted_parallel.document());
}

#[test]
fn folds_and_artifacts_are_chunk_size_invariant() {
    // Chunk partitioning (the REPRO_STREAM_CHUNK knob) must be
    // invisible in every folded stat: compare broadcast folds at
    // several chunk sizes against the whole-trace oracle. Env vars are
    // process-global, so the sizes are driven through the pipeline
    // directly rather than by mutating the environment.
    let whole: Vec<Instr> = spec92_trace(Spec92Program::Nasa7, SWEEP_SEED)
        .take(N)
        .collect();
    let mut oracle = StackDistSweep::new_range(32, 4, 7, 2, 500).unwrap();
    for instr in &whole {
        oracle.process(*instr);
    }
    for chunk in [64, 977, N + 1] {
        let folded = stream::broadcast(
            spec92_trace(Spec92Program::Nasa7, SWEEP_SEED).take(N),
            chunk,
            vec![StackDistSweep::new_range(32, 4, 7, 2, 500).unwrap()],
        );
        for k in 4..=7 {
            assert_eq!(
                folded[0].stats(k, 2),
                oracle.stats(k, 2),
                "chunk={chunk} k={k}"
            );
        }
    }
    // And the rendered CSV artifact (what the manifest hashes) is
    // stable across repeated streamed runs.
    let grid = SweepGrid {
        cache_sizes: vec![1024, 4096],
        line_sizes: vec![16, 32],
        assoc: 2,
        warmup: 500,
    };
    let reference = artifact(&run_sweep(&[Spec92Program::Nasa7], &grid, N));
    let again = artifact(&run_sweep(&[Spec92Program::Nasa7], &grid, N));
    assert_eq!(format!("{reference:?}"), format!("{again:?}"));
}
