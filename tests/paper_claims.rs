//! Executable summary of the paper: every headline claim of Chen &
//! Somani (ISCA 1994), asserted through the public API. Read this file
//! next to EXPERIMENTS.md — each test is one claim.

use smithval::{validate_all_panels, DesignTargetModel};
use tradeoff::crossover::pipelined_vs_double_bus;
use tradeoff::equiv::{equivalent_hit_ratio, hit_gain_equivalent, traded_hit_ratio};
use unified_tradeoff::prelude::*;

fn fs(alpha: f64) -> SystemConfig {
    SystemConfig::full_stalling(alpha)
}

/// §4.1: "the performance loss due to reducing the hit ratio of a
/// blocking cache from HR to a value in the range from 2HR − 1 to
/// 2.5HR − 1.5 can be compensated by doubling the data bus width."
#[test]
fn claim_bus_doubling_compensates_2hr_minus_1_to_2_5hr_minus_1_5() {
    let hr = HitRatio::new(0.95).unwrap();
    // Upper end of the range: β_m = 2 (the design limit), L = 2D.
    let m2 = Machine::new(4.0, 8.0, 2.0).unwrap();
    let hr2 = equivalent_hit_ratio(&m2, &fs(0.5), &fs(0.5).with_bus_factor(2.0), hr).unwrap();
    assert!((hr2.value() - (2.5 * 0.95 - 1.5)).abs() < 1e-12);
    // Lower end: β_m → ∞.
    let m_inf = Machine::new(4.0, 8.0, 1e9).unwrap();
    let hr2 = equivalent_hit_ratio(&m_inf, &fs(0.5), &fs(0.5).with_bus_factor(2.0), hr).unwrap();
    assert!((hr2.value() - (2.0 * 0.95 - 1.0)).abs() < 1e-6);
}

/// §1: "the performance loss due to reducing cache hit ratio from 0.95
/// to 0.9 or from 0.98 to 0.96 can be compensated by doubling the
/// external data bus of a processor."
#[test]
fn claim_95_to_90_and_98_to_96() {
    let m = Machine::new(4.0, 8.0, 1e9).unwrap();
    for (hr1, hr2_expected) in [(0.95, 0.90), (0.98, 0.96)] {
        let hr2 = equivalent_hit_ratio(
            &m,
            &fs(0.5),
            &fs(0.5).with_bus_factor(2.0),
            HitRatio::new(hr1).unwrap(),
        )
        .unwrap();
        assert!(
            (hr2.value() - hr2_expected).abs() < 1e-6,
            "{hr1} → {}",
            hr2.value()
        );
    }
}

/// §6 bullet 1: "increasing the cache hit ratio at HR by a value in the
/// range 0.5(1 − HR) to 0.6(1 − HR) is the same as ... doubling the
/// data bus width" (for L ≥ 2D, α = 0.5).
#[test]
fn claim_gain_band_half_to_point_six() {
    let hr = HitRatio::new(0.9).unwrap();
    let lo = hit_gain_equivalent(
        &Machine::new(4.0, 8.0, 1e9).unwrap(),
        &fs(0.5),
        &fs(0.5).with_bus_factor(2.0),
        hr,
    )
    .unwrap();
    let hi = hit_gain_equivalent(
        &Machine::new(4.0, 8.0, 2.0).unwrap(),
        &fs(0.5),
        &fs(0.5).with_bus_factor(2.0),
        hr,
    )
    .unwrap();
    assert!((lo - 0.5 * 0.1).abs() < 1e-6, "large-β end: {lo}");
    assert!((hi - 0.6 * 0.1).abs() < 1e-12, "β = 2 end: {hi}");
}

/// §6 bullet 2: "the three best architectural features in order of
/// priority ... are doubling the bus width, providing the read-bypassing
/// write buffers, and the use of a cache with a bus-not-locked" —
/// stable over β_m and line size (non-pipelined substrate).
#[test]
fn claim_feature_ranking() {
    let hr = HitRatio::new(0.95).unwrap();
    for l in [8.0, 16.0, 32.0] {
        for beta in [2.0, 4.0, 8.0, 16.0] {
            let m = Machine::new(4.0, l, beta).unwrap();
            let bus = traded_hit_ratio(&m, &fs(0.5), &fs(0.5).with_bus_factor(2.0), hr).unwrap();
            let wb = traded_hit_ratio(&m, &fs(0.5), &fs(0.5).with_write_buffers(), hr).unwrap();
            // Figure 1: BNL1's measured φ sits at 80–95 % of L/D.
            let bnl = traded_hit_ratio(
                &m,
                &fs(0.5),
                &fs(0.5).with_partial_stall(0.85 * l / 4.0),
                hr,
            )
            .unwrap();
            assert!(bus > wb, "L={l} β={beta}");
            assert!(wb > bnl, "L={l} β={beta}");
        }
    }
}

/// §6 bullet 4: "the pipelined memory system helps to improve
/// performance most when the memory cycle time is larger than about
/// five clock cycles (for L/D > 2 and q = 2)" — and never for L/D = 2.
#[test]
fn claim_pipelining_crossover() {
    let beta_star = pipelined_vs_double_bus(8.0, 2.0).unwrap();
    assert!(beta_star > 4.0 && beta_star < 6.0, "β* = {beta_star}");
    assert_eq!(pipelined_vs_double_bus(2.0, 2.0), None);
    // And the ΔHR curves actually cross there.
    let hr = HitRatio::new(0.95).unwrap();
    for (beta, pipe_wins) in [(4.0, false), (6.0, true)] {
        let m = Machine::new(4.0, 32.0, beta).unwrap();
        let pipe = traded_hit_ratio(&m, &fs(0.5), &fs(0.5).with_pipelined_memory(2.0), hr).unwrap();
        let bus = traded_hit_ratio(&m, &fs(0.5), &fs(0.5).with_bus_factor(2.0), hr).unwrap();
        assert_eq!(pipe > bus, pipe_wins, "β = {beta}");
    }
}

/// §5.4.2: "The optimal line sizes determined by Eq. (19) exactly match
/// with those of Smith's work. This result validates our tradeoff
/// methodology."
#[test]
fn claim_smith_validation() {
    for v in validate_all_panels(&DesignTargetModel::default()).unwrap() {
        assert!(v.selectors_agree, "{}", v.panel);
        assert!(v.matches_paper, "{}", v.panel);
    }
}

/// Example 1: "a processor with a 64-bit bus and an 8K cache and a
/// processor with a 32-bit bus and a 32K cache have the same execution
/// time" (91 % vs 95.5 % hit ratios from Short & Levy).
#[test]
fn claim_example_1() {
    let m = Machine::new(4.0, 32.0, 8.0).unwrap();
    let gain = hit_gain_equivalent(
        &m,
        &fs(0.5),
        &fs(0.5).with_bus_factor(2.0),
        HitRatio::new(0.91).unwrap(),
    )
    .unwrap();
    assert!(
        (0.91 + gain - 0.955).abs() < 0.005,
        "required {}",
        0.91 + gain
    );
}

/// §6 bullet 3: "if ... subsequent load/store accesses are only stalled
/// by the latency of the requested data [BNL3], then the read miss
/// latency of a full blocking cache can be reduced by 20–30% for a
/// memory cycle time of less than 15 clock cycles."
#[test]
fn claim_bnl3_reduction_band() {
    use simtrace::spec92::{spec92_trace, Spec92Program};
    let mut reductions = Vec::new();
    for beta in [8u64, 12] {
        let run = |stall: StallFeature| -> f64 {
            let mut total = 0.0;
            for p in Spec92Program::ALL {
                let cfg = CpuConfig::baseline(
                    CacheConfig::new(8 * 1024, 32, 2).unwrap(),
                    MemoryTiming::new(BusWidth::new(4).unwrap(), beta),
                )
                .with_stall(stall);
                total += Cpu::new(cfg).run(spec92_trace(p, 2).take(40_000)).phi();
            }
            total / 6.0
        };
        let fs_phi = run(StallFeature::FullStall);
        let bnl3_phi = run(StallFeature::BusNotLocked3);
        reductions.push(1.0 - bnl3_phi / fs_phi);
    }
    for r in &reductions {
        assert!(
            (0.08..=0.40).contains(r),
            "BNL3 read-miss reduction {r:.2} outside the plausible band (paper: 20–30 %)"
        );
    }
}

/// §4.5: the model "is based on the equivalence of the mean memory delay
/// time" — equal mean access time ⟺ equal execution time.
#[test]
fn claim_mean_delay_equivalence() {
    let m = Machine::new(4.0, 32.0, 8.0).unwrap();
    let base = fs(0.5);
    let enh = base.with_bus_factor(2.0);
    let hr1 = HitRatio::new(0.95).unwrap();
    let hr2 = equivalent_hit_ratio(&m, &base, &enh, hr1).unwrap();
    let t1 = mean_access_time(&m, &base, hr1).unwrap();
    let t2 = mean_access_time(&m, &enh, hr2).unwrap();
    assert!(
        (t1 - t2).abs() < 1e-9,
        "mean delays must match: {t1} vs {t2}"
    );
}
