//! The miss-event timeline engine against its oracle: for *arbitrary*
//! traces and every supported timing configuration, `TimelineCpu` must
//! reproduce `Cpu::run` **bit-identically** — the whole `SimResult`
//! (cycles, φ, α, every stall counter, the miss-distance histogram, the
//! write-buffer statistics), not just summary ratios. This is the
//! `mattson_oracle.rs` counterpart for the timing half of the harness.

use proptest::prelude::*;
use unified_tradeoff::prelude::*;
use unified_tradeoff::simmem::BypassMode;

fn traces() -> impl Strategy<Value = Vec<Instr>> {
    // Mixed loads/stores/plains over a bounded region, word-aligned;
    // small enough that eviction and re-miss patterns are dense.
    proptest::collection::vec((0u8..3, 0u64..16 * 1024), 1..400).prop_map(|ops| {
        ops.into_iter()
            .enumerate()
            .map(|(i, (kind, addr))| {
                let pc = (i as u64) * 4;
                match kind {
                    0 => Instr::plain(pc),
                    1 => Instr::mem(pc, MemRef::load(addr & !3, 4)),
                    _ => Instr::mem(pc, MemRef::store(addr & !3, 4)),
                }
            })
            .collect()
    })
}

fn stalls() -> impl Strategy<Value = StallFeature> {
    prop_oneof![
        Just(StallFeature::FullStall),
        Just(StallFeature::BusLocked),
        Just(StallFeature::BusNotLocked1),
        Just(StallFeature::BusNotLocked2),
        Just(StallFeature::BusNotLocked3),
        (1u32..5).prop_map(|m| StallFeature::NonBlocking { mshrs: m }),
    ]
}

/// Every configuration the timeline claims to replay exactly: any stall
/// feature, β_m, bus width, line size, memory pipelining, asymmetric
/// write timing and write-buffer setting over a write-back
/// write-allocate data cache.
fn supported_configs() -> impl Strategy<Value = CpuConfig> {
    (
        stalls(),
        prop_oneof![Just(4u64), Just(8)],             // bus
        prop_oneof![Just(16u64), Just(32), Just(64)], // line
        2u64..30,                                     // beta
        0u64..4,                                      // pipelining quantum (0 = off)
        any::<bool>(),                                // writes at 2×β
        0usize..5,                                    // write-buffer capacity (0 = none)
        any::<bool>(),                                // chunk-granular bypass
    )
        .prop_map(
            |(stall, bus, line, beta, q, slow_writes, capacity, chunky)| {
                let line = line.max(bus);
                let mut timing = MemoryTiming::new(BusWidth::new(bus).expect("valid"), beta);
                if q > 0 {
                    timing = timing.pipelined(q.min(beta));
                }
                if slow_writes {
                    timing = timing.with_write_beta(2 * beta);
                }
                let mut cfg = CpuConfig::baseline(
                    CacheConfig::new(2 * 1024, line, 2).expect("valid"),
                    timing,
                )
                .with_stall(stall);
                if capacity > 0 {
                    let mode = if chunky {
                        BypassMode::ChunkGranular
                    } else {
                        BypassMode::Ideal
                    };
                    cfg = cfg.with_write_buffer(WriteBufferConfig { capacity, mode });
                }
                cfg
            },
        )
}

fn replay(trace: &[Instr], cfg: CpuConfig) -> SimResult {
    let timeline = MissTimeline::extract(cfg.dcache, trace.iter().copied());
    assert!(
        timeline.supports(&cfg),
        "strategy must generate supported configs"
    );
    timeline.replay(&cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline guarantee: replayed results equal full simulation,
    /// field for field.
    #[test]
    fn timeline_replay_is_bit_identical(trace in traces(), cfg in supported_configs()) {
        let oracle = Cpu::new(cfg).run(trace.iter().copied());
        prop_assert_eq!(replay(&trace, cfg), oracle);
    }

    /// One timeline serves every timing point: replaying the *same*
    /// extraction under two configurations matches two fresh oracles.
    #[test]
    fn one_extraction_many_replays(
        trace in traces(),
        cfg_a in supported_configs(),
        cfg_b in supported_configs(),
    ) {
        // Force a shared cache geometry so one timeline covers both.
        let mut cfg_b = cfg_b;
        cfg_b.dcache = cfg_a.dcache;
        let timeline = MissTimeline::extract(cfg_a.dcache, trace.iter().copied());
        for cfg in [cfg_a, cfg_b] {
            let oracle = Cpu::new(cfg).run(trace.iter().copied());
            prop_assert_eq!(timeline.replay(&cfg), oracle);
        }
    }

    /// Windowed replay: snapshots at arbitrary reference counts equal
    /// `Cpu::snapshot` at the same boundaries — the warm-up-then-measure
    /// pattern every phase/window experiment relies on.
    #[test]
    fn marks_match_cpu_snapshots(
        trace in traces(),
        cfg in supported_configs(),
        cuts in proptest::collection::vec(1u64..400, 1..4),
    ) {
        let refs = trace.iter().filter(|i| i.mem.is_some()).count() as u64;
        let mut marks: Vec<u64> = cuts.into_iter().filter(|&c| c <= refs).collect();
        marks.sort_unstable();
        marks.dedup();
        if marks.is_empty() {
            return Ok(()); // trace too short for any cut this case
        }

        let timeline = MissTimeline::extract(cfg.dcache, trace.iter().copied());
        let (snaps, fin) = TimelineCpu::new(&timeline, cfg)
            .expect("supported")
            .run_with_marks(&marks);

        let mut cpu = Cpu::new(cfg);
        let mut seen = 0u64;
        let mut next = marks.iter().copied().peekable();
        let mut oracle = Vec::new();
        for instr in &trace {
            cpu.step(instr);
            if instr.mem.is_some() {
                seen += 1;
                if next.peek() == Some(&seen) {
                    next.next();
                    oracle.push(cpu.snapshot());
                }
            }
        }
        prop_assert_eq!(snaps, oracle);
        prop_assert_eq!(fin, cpu.finish());
    }

    /// φ and α derived from the replay match the oracle's — the two
    /// quantities every figure of the paper consumes.
    #[test]
    fn phi_and_alpha_match(trace in traces(), cfg in supported_configs()) {
        let fast = replay(&trace, cfg);
        let oracle = Cpu::new(cfg).run(trace.iter().copied());
        prop_assert_eq!(fast.phi(), oracle.phi());
        prop_assert_eq!(fast.alpha(), oracle.alpha());
        prop_assert_eq!(fast.cycles, oracle.cycles);
    }
}

#[test]
fn unsupported_configs_fall_back_to_the_oracle_path() {
    // The one guarantee the engine makes about configurations it cannot
    // replay: it refuses them, so callers keep using `Cpu::run`.
    let cache = CacheConfig::new(2 * 1024, 32, 2).unwrap();
    let timeline = MissTimeline::extract(cache, std::iter::empty());
    let cfg = CpuConfig::baseline(cache, MemoryTiming::new(BusWidth::new(4).unwrap(), 8))
        .with_icache(CacheConfig::new(1024, 32, 1).unwrap());
    assert!(!timeline.supports(&cfg));
    assert!(TimelineCpu::new(&timeline, cfg).is_err());
}
