//! Manifest determinism: a serial and a `--jobs N` suite run hash to
//! the same `manifest.json`, and a doctored artifact is detected.

use bench::registry::RunCtx;
use bench::sched::{drive, SuiteOptions};
use report::{Manifest, MANIFEST_NAME};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("manifest_it_{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn serial_and_parallel_manifests_are_identical_and_verify() {
    let ctx = RunCtx::with_instructions(2_000);
    let serial_dir = tmp_dir("serial");
    let parallel_dir = tmp_dir("parallel");

    let serial = drive("all", &SuiteOptions::new(1, ctx.clone()), &serial_dir).expect("serial run");
    let parallel = drive("all", &SuiteOptions::new(4, ctx), &parallel_dir).expect("jobs run");

    let m_serial = serial.manifest.expect("full runs write a manifest");
    let m_parallel = parallel.manifest.expect("full runs write a manifest");
    assert_eq!(m_serial.to_json(), m_parallel.to_json());

    // The written files round-trip and hash-verify.
    let json = fs::read_to_string(serial_dir.join(MANIFEST_NAME)).unwrap();
    let parsed = Manifest::parse(&json).unwrap();
    assert_eq!(parsed, m_serial);
    assert!(parsed.verify_dir(&serial_dir).is_empty());
    assert!(m_parallel.verify_dir(&parallel_dir).is_empty());

    // The suite document itself is an artifact.
    assert!(parsed
        .entries
        .iter()
        .any(|e| e.name == "run_all_report.txt"));

    // Doctor one CSV: verification must flag exactly that file.
    fs::write(serial_dir.join("fig1.csv"), "stale,stale\n").unwrap();
    let drift = parsed.verify_dir(&serial_dir);
    assert_eq!(drift.len(), 1);
    assert!(drift[0].to_string().starts_with("fig1.csv"));

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}

#[test]
fn filtered_runs_write_artifacts_but_no_manifest() {
    let dir = tmp_dir("filtered");
    let outcome = drive(
        "fig2",
        &SuiteOptions::new(1, RunCtx::with_instructions(2_000)),
        &dir,
    )
    .expect("filtered run");
    assert!(outcome.manifest.is_none());
    assert!(dir.join("fig2.csv").exists());
    assert!(!dir.join(MANIFEST_NAME).exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_selection_is_an_error() {
    let dir = tmp_dir("empty");
    let err = drive(
        "no-such-tag",
        &SuiteOptions::new(1, RunCtx::with_instructions(100)),
        &dir,
    )
    .unwrap_err();
    assert!(err.to_string().contains("no experiment matches"));
}
