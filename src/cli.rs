//! Implementation of the `tradeoff` command-line tool.
//!
//! The binary (`src/bin/tradeoff.rs`) is a thin wrapper; everything here
//! is plain functions over parsed options so the behaviour is unit
//! tested. Subcommands:
//!
//! * `price` — the hit ratio each feature is worth at a design point;
//! * `crossover` — where pipelined memory starts to win;
//! * `linesize` — optimal line size for a measured hit-ratio curve;
//! * `simulate` — run a SPEC92 proxy through the cycle-accurate
//!   simulator;
//! * `design` — enumerate bus/buffer/pipeline configurations meeting a
//!   mean-access-time target at minimum pin cost;
//! * `grid` — answer a (size × line × assoc) hit-ratio grid with the
//!   simulated or the closed-form analytic backend;
//! * `experiments` — list, run (serially or `--jobs N`-parallel) and
//!   hash-verify the registered paper experiments.

use report::Table;
use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use std::collections::BTreeMap;
use tradeoff::cost::PinModel;
use tradeoff::linesize::{optimal_line_eq19, optimal_line_smith, FillTiming, LineCandidate};
use tradeoff::{mean_access_time, HitRatio, Machine, SystemConfig};

/// A parsed `--key value` option map.
pub type Options = BTreeMap<String, String>;

/// A typed CLI failure carrying the exit code the binary maps it to.
///
/// The scheme matches the `exp` binary: `2` for bad usage (unknown
/// subcommand, malformed options, filters matching nothing), `1` for
/// experiment failures in a degraded run, `3` for manifest drift or an
/// artifact that could not be written.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage — exit 2.
    Usage(String),
    /// One or more experiments failed — exit 1. `document` holds the
    /// partial suite report to print on stdout before the summary.
    Failure {
        /// Partial suite document (may be empty for strict runs).
        document: String,
        /// One-line-per-failure summary for stderr.
        summary: String,
    },
    /// Manifest drift or artifact write failure — exit 3.
    Drift(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failure { .. } => 1,
            CliError::Usage(_) => 2,
            CliError::Drift(_) => 3,
        }
    }

    /// The user-facing message (stderr).
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Drift(m) => m,
            CliError::Failure { summary, .. } => summary,
        }
    }

    /// Partial output to print on stdout before the message, if any.
    pub fn partial_output(&self) -> Option<&str> {
        match self {
            CliError::Failure { document, .. } if !document.is_empty() => Some(document),
            _ => None,
        }
    }
}

/// Splits raw arguments into a subcommand and its `--key value` options.
///
/// # Errors
///
/// Returns a usage message when the subcommand is missing or an option
/// has no value.
pub fn parse_args(args: &[String]) -> Result<(String, Options), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?.clone();
    let mut opts = Options::new();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or(format!("expected --option, got {key:?}"))?;
        let value = it.next().ok_or(format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok((cmd, opts))
}

fn usage() -> String {
    "usage: tradeoff <price|crossover|linesize|simulate|design|grid|experiments> [--option value]...\n\
     \n\
     price       --bus 4 --line 32 --beta 8 --hr 0.95 [--alpha 0.5] [--q 2] [--width 1]\n\
     crossover   --chunks 8 --q 2 [--alpha 0.5]\n\
     linesize    --c 7 --beta 1 --bus 4 --curve 8:0.90,16:0.94,32:0.96,64:0.97\n\
     simulate    --program ear [--instructions 100000] [--stall fs|bl|bnl1|bnl2|bnl3|nb]\n\
     \u{20}           [--cache 8192] [--line 32] [--bus 4] [--beta 8]\n\
     design      --hr 0.95 --target 3.5 [--line 32] [--beta 8] [--alpha 0.5]\n\
     grid        [--backend sim|analytic] [--instructions 120000] [--target 0.9]\n\
     \u{20}           [--sets 2084] [--assoc 16]  (dense bounds, analytic backend only)\n\
     experiments list\n\
     experiments run    [--filter <tag|id>] [--jobs N] [--results-dir DIR] [--keep-going]\n\
     experiments verify [--results-dir DIR] [--manifest FILE]\n\
     \n\
     exit codes: 0 ok, 1 experiment failure, 2 bad usage, 3 manifest drift"
        .to_string()
}

fn get_f64(opts: &Options, key: &str, default: Option<f64>) -> Result<f64, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: not a number: {v:?}")),
        None => default.ok_or(format!("missing required --{key}")),
    }
}

fn get_u64(opts: &Options, key: &str, default: Option<u64>) -> Result<u64, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: not an integer: {v:?}")),
        None => default.ok_or(format!("missing required --{key}")),
    }
}

/// Runs one CLI invocation and returns its report.
///
/// Thin wrapper over [`run_cli`] that flattens the typed error to its
/// message — the shape the unit tests (and any library callers) use.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments.
pub fn run(args: &[String]) -> Result<String, String> {
    run_cli(args).map_err(|e| e.message().to_string())
}

/// Runs one CLI invocation, keeping the typed [`CliError`] so the
/// binary can map failures to distinct exit codes.
///
/// # Errors
///
/// [`CliError::Usage`] on bad arguments, [`CliError::Failure`] when
/// experiments fail, [`CliError::Drift`] on manifest drift or write
/// errors.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    if args.first().map(String::as_str) == Some("experiments") {
        return experiments(&args[1..]);
    }
    let plain = |r: Result<String, String>| r.map_err(CliError::Usage);
    let (cmd, opts) = parse_args(args).map_err(CliError::Usage)?;
    match cmd.as_str() {
        "price" => plain(price(&opts)),
        "crossover" => plain(crossover(&opts)),
        "linesize" => plain(linesize(&opts)),
        "simulate" => plain(simulate(&opts)),
        "design" => plain(design(&opts)),
        "grid" => plain(grid(&opts)),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n{}",
            usage()
        ))),
    }
}

/// Maps a [`bench::Error`] from the suite driver to the CLI's typed
/// error: no-match filters are usage, experiment failures are failures,
/// write errors are drift-class (the results directory is suspect).
fn from_bench(e: bench::Error) -> CliError {
    match e {
        bench::Error::NoMatch { .. } => CliError::Usage(e.to_string()),
        bench::Error::Experiment { .. } => CliError::Failure {
            document: String::new(),
            summary: e.to_string(),
        },
        bench::Error::Write { .. } => CliError::Drift(e.to_string()),
    }
}

/// The `tradeoff experiments <list|run|verify>` subcommand over the
/// bench registry.
///
/// # Errors
///
/// Returns a typed error on bad arguments, unknown experiments or
/// manifest drift.
fn experiments(args: &[String]) -> Result<String, CliError> {
    // `--keep-going` is a bare flag; the option grammar is strictly
    // `--key value` pairs, so strip it before parsing.
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--keep-going")
        .cloned()
        .collect();
    let (action, opts) = if args.is_empty() {
        ("list".to_string(), Options::new())
    } else {
        parse_args(&args).map_err(CliError::Usage)?
    };
    match action.as_str() {
        "list" => {
            let mut t = Table::new(["id", "tags", "shared traces", "title"]);
            for e in bench::registry::all() {
                t.row([
                    e.id().to_string(),
                    e.tags().join(","),
                    e.depends_on_traces().join(","),
                    e.title().to_string(),
                ]);
            }
            Ok(t.render())
        }
        "run" => {
            let filter = opts.get("filter").cloned().unwrap_or_default();
            let jobs = get_u64(&opts, "jobs", Some(1)).map_err(CliError::Usage)? as usize;
            let dir = opts
                .get("results-dir")
                .map_or_else(bench::common::results_dir, std::path::PathBuf::from);
            let sched_opts =
                bench::sched::SuiteOptions::new(jobs, bench::registry::RunCtx::standard())
                    .keep_going(keep_going);
            let outcome = bench::sched::drive(&filter, &sched_opts, &dir).map_err(from_bench)?;
            eprintln!("{}", outcome.run.footer());
            if outcome.run.has_failures() {
                return Err(CliError::Failure {
                    document: outcome.run.document(),
                    summary: outcome.run.failure_summary(),
                });
            }
            Ok(outcome.run.document())
        }
        "verify" => {
            let dir = opts
                .get("results-dir")
                .map_or_else(bench::common::results_dir, std::path::PathBuf::from);
            let manifest_path = opts
                .get("manifest")
                .map_or_else(|| dir.join(report::MANIFEST_NAME), std::path::PathBuf::from);
            let json = std::fs::read_to_string(&manifest_path).map_err(|e| {
                CliError::Usage(format!("reading {}: {e}", manifest_path.display()))
            })?;
            let manifest = report::Manifest::parse(&json).map_err(CliError::Usage)?;
            let drift = manifest.verify_dir(&dir);
            if drift.is_empty() {
                Ok(format!(
                    "{} artifacts verified against {}\n",
                    manifest.entries.len(),
                    manifest_path.display()
                ))
            } else {
                Err(CliError::Drift(
                    drift
                        .iter()
                        .map(|d| format!("drift: {d}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                ))
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown experiments action {other:?}\n{}",
            usage()
        ))),
    }
}

fn price(opts: &Options) -> Result<String, String> {
    let bus = get_f64(opts, "bus", Some(4.0))?;
    let line = get_f64(opts, "line", Some(32.0))?;
    let beta = get_f64(opts, "beta", Some(8.0))?;
    let hr = HitRatio::new(get_f64(opts, "hr", None)?).map_err(|e| e.to_string())?;
    let alpha = get_f64(opts, "alpha", Some(0.5))?;
    let q = get_f64(opts, "q", Some(2.0))?;
    let width = get_u64(opts, "width", Some(1))? as u32;

    let machine = Machine::new(bus, line, beta).map_err(|e| e.to_string())?;
    let base = SystemConfig::full_stalling(alpha);
    let features = [
        ("doubling bus", base.with_bus_factor(2.0)),
        ("write buffers", base.with_write_buffers()),
        ("pipelined memory", base.with_pipelined_memory(q)),
    ];
    let mut t = Table::new(["feature", "worth (ΔHR)", "equal-performance HR"]);
    for (name, enh) in features {
        let dhr = tradeoff::multiissue::traded_hit_ratio_w(&machine, &base, &enh, hr, width)
            .map_err(|e| e.to_string())?;
        let hr2 = (hr.value() - dhr).max(0.0);
        t.row([
            name.to_string(),
            format!("{:+.3}%", 100.0 * dhr),
            format!("{:.2}%", 100.0 * hr2),
        ]);
    }
    Ok(format!(
        "Design point: D={bus}B L={line}B β_m={beta} α={alpha} HR={hr} issue width {width}\n{}",
        t.render()
    ))
}

fn crossover(opts: &Options) -> Result<String, String> {
    let chunks = get_f64(opts, "chunks", None)?;
    let q = get_f64(opts, "q", Some(2.0))?;
    let alpha = get_f64(opts, "alpha", Some(0.5))?;
    let vs_bus = tradeoff::crossover::pipelined_vs_double_bus(chunks, q);
    let vs_wb = tradeoff::crossover::pipelined_vs_write_buffers(chunks, q, alpha);
    let fmt = |x: Option<f64>| x.map_or("never".to_string(), |b| format!("β_m > {b:.2}"));
    Ok(format!(
        "L/D = {chunks}, q = {q}, α = {alpha}:\n  pipelined beats doubling bus: {}\n  pipelined beats write buffers: {}\n",
        fmt(vs_bus),
        fmt(vs_wb)
    ))
}

/// Parses a `8:0.90,16:0.94` hit-ratio curve.
///
/// # Errors
///
/// Returns a message for malformed pairs.
pub fn parse_curve(spec: &str) -> Result<Vec<LineCandidate>, String> {
    spec.split(',')
        .map(|pair| {
            let (l, h) = pair
                .split_once(':')
                .ok_or(format!("bad curve entry {pair:?}"))?;
            let line_bytes: f64 = l
                .trim()
                .parse()
                .map_err(|_| format!("bad line size {l:?}"))?;
            let hr: f64 = h
                .trim()
                .parse()
                .map_err(|_| format!("bad hit ratio {h:?}"))?;
            Ok(LineCandidate {
                line_bytes,
                hit_ratio: HitRatio::new(hr).map_err(|e| e.to_string())?,
            })
        })
        .collect()
}

fn linesize(opts: &Options) -> Result<String, String> {
    let c = get_f64(opts, "c", None)?;
    let beta = get_f64(opts, "beta", None)?;
    let bus = get_f64(opts, "bus", Some(4.0))?;
    let curve = parse_curve(opts.get("curve").ok_or("missing required --curve")?)?;
    let timing = FillTiming::new(c, beta).map_err(|e| e.to_string())?;
    let smith = optimal_line_smith(&timing, bus, &curve).map_err(|e| e.to_string())?;
    let ours = optimal_line_eq19(&timing, bus, &curve).map_err(|e| e.to_string())?;
    Ok(format!(
        "fill time c={c} β={beta}, D={bus}B:\n  Smith (Eq. 16): {} B\n  paper (Eq. 19): {} B\n  agree: {}\n",
        smith.line_bytes,
        ours.line_bytes,
        smith.line_bytes == ours.line_bytes
    ))
}

fn parse_stall(name: &str) -> Result<StallFeature, String> {
    Ok(match name {
        "fs" => StallFeature::FullStall,
        "bl" => StallFeature::BusLocked,
        "bnl1" => StallFeature::BusNotLocked1,
        "bnl2" => StallFeature::BusNotLocked2,
        "bnl3" => StallFeature::BusNotLocked3,
        "nb" => StallFeature::NonBlocking { mshrs: 4 },
        other => return Err(format!("unknown stalling feature {other:?}")),
    })
}

fn simulate(opts: &Options) -> Result<String, String> {
    let program_name = opts.get("program").ok_or("missing required --program")?;
    let program = Spec92Program::ALL
        .into_iter()
        .find(|p| p.name() == program_name)
        .ok_or(format!("unknown program {program_name:?}"))?;
    let n = get_u64(opts, "instructions", Some(100_000))? as usize;
    let stall = parse_stall(opts.get("stall").map_or("fs", String::as_str))?;
    let cache = get_u64(opts, "cache", Some(8 * 1024))?;
    let line = get_u64(opts, "line", Some(32))?;
    let bus = get_u64(opts, "bus", Some(4))?;
    let beta = get_u64(opts, "beta", Some(8))?;

    let cfg = CpuConfig::baseline(
        CacheConfig::new(cache, line, 2).map_err(|e| e.to_string())?,
        MemoryTiming::new(BusWidth::new(bus).map_err(|e| e.to_string())?, beta),
    )
    .with_stall(stall);
    cfg.validate()?;
    let r = Cpu::new(cfg).run(spec92_trace(program, 1).take(n));
    Ok(format!(
        "{program} × {n} instructions, {stall}, {cache}B cache, L={line}, D={bus}, β={beta}:\n  {r}\n",
    ))
}

/// The `tradeoff grid` subcommand: answer a hit-ratio design grid with
/// either backend. `sim` replays the Figure-6 comparison grid through
/// single-pass stack-distance sweeps; `analytic` walks a dense
/// closed-form grid (every set count `1..=--sets`, every way count
/// `1..=--assoc`) that no simulator pass could afford, reporting the
/// cheapest geometry per proxy reaching `--target`.
fn grid(opts: &Options) -> Result<String, String> {
    use simcache::HitRatioBackend;
    let backend = opts.get("backend").map_or("analytic", String::as_str);
    let n = get_u64(opts, "instructions", Some(120_000))? as usize;
    let warmup = n as u64 / 5;
    let programs = Spec92Program::ALL;
    match backend {
        "sim" => {
            let spec = bench::grid::GridSpec::comparison(warmup);
            let start = std::time::Instant::now();
            let mut t = Table::new(["program", "best HR", "geometry"]);
            let mut points = 0usize;
            for &program in &programs {
                let sim = bench::grid::build_simulated(program, &spec, n);
                let mut best: Option<(f64, u64, u64, u32)> = None;
                for &cache in &spec.cache_sizes {
                    for &line in &spec.line_sizes {
                        for &assoc in &spec.assocs {
                            let hr = sim
                                .hit_ratio(cache, line, assoc)
                                .map_err(|e| e.to_string())?;
                            points += 1;
                            if best.is_none_or(|b| hr > b.0) {
                                best = Some((hr, cache, line, assoc));
                            }
                        }
                    }
                }
                let (hr, cache, line, assoc) = best.expect("grid is nonempty");
                t.row([
                    program.to_string(),
                    format!("{hr:.4}"),
                    format!("{cache} B, {line} B lines, {assoc}-way"),
                ]);
            }
            let secs = start.elapsed().as_secs_f64();
            Ok(format!(
                "backend sim: {points} grid points in {secs:.2}s ({:.0} points/s)\n{}",
                points as f64 / secs,
                t.render()
            ))
        }
        "analytic" => {
            let target = get_f64(opts, "target", Some(0.9))?;
            let dense = bench::grid::DenseGrid {
                line_sizes: vec![8, 16, 32, 64, 128],
                max_sets: get_u64(opts, "sets", Some(2084))?,
                max_assoc: get_u64(opts, "assoc", Some(16))? as u32,
            };
            let points = dense.points() * programs.len();
            let start = std::time::Instant::now();
            let body = bench::grid::dense_render(&programs, &dense, n, warmup, target);
            let secs = start.elapsed().as_secs_f64();
            Ok(format!(
                "backend analytic: {points} grid points in {secs:.2}s ({:.0} points/s, \
                 including one histogram fold per proxy)\n{body}",
                points as f64 / secs,
            ))
        }
        other => Err(format!("unknown backend {other:?} (want sim or analytic)")),
    }
}

fn design(opts: &Options) -> Result<String, String> {
    let hr = HitRatio::new(get_f64(opts, "hr", None)?).map_err(|e| e.to_string())?;
    let target = get_f64(opts, "target", None)?;
    let line = get_f64(opts, "line", Some(32.0))?;
    let beta = get_f64(opts, "beta", Some(8.0))?;
    let alpha = get_f64(opts, "alpha", Some(0.5))?;
    let pins = PinModel::default();

    let mut feasible = Vec::new();
    for bus in [4.0, 8.0, 16.0] {
        if line < bus {
            continue;
        }
        let machine = Machine::new(bus, line, beta).map_err(|e| e.to_string())?;
        for buffered in [false, true] {
            for piped in [false, true] {
                let mut sys = SystemConfig::full_stalling(alpha);
                if buffered {
                    sys = sys.with_write_buffers();
                }
                if piped {
                    sys = sys.with_pipelined_memory(2.0);
                }
                let t = mean_access_time(&machine, &sys, hr).map_err(|e| e.to_string())?;
                if t <= target {
                    feasible.push((pins.pins(bus as u64), bus, buffered, piped, t));
                }
            }
        }
    }
    if feasible.is_empty() {
        return Ok(format!(
            "No configuration reaches a mean access time of {target} at HR {hr} — \
             raise the hit ratio or relax the target.\n"
        ));
    }
    feasible.sort_by(|a, b| a.0.cmp(&b.0).then(a.4.total_cmp(&b.4)));
    let mut t = Table::new([
        "pins",
        "bus",
        "write buffers",
        "pipelined",
        "mean access time",
    ]);
    for (p, bus, wb, piped, time) in &feasible {
        t.row([
            p.to_string(),
            format!("{}-bit", *bus as u64 * 8),
            wb.to_string(),
            piped.to_string(),
            format!("{time:.3}"),
        ]);
    }
    Ok(format!(
        "Configurations meeting mean access time ≤ {target} at HR {hr} (fewest pins first):\n{}",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_args_splits_command_and_options() {
        let (cmd, opts) = parse_args(&argv("price --hr 0.95 --beta 8")).unwrap();
        assert_eq!(cmd, "price");
        assert_eq!(opts.get("hr").unwrap(), "0.95");
        assert_eq!(opts.get("beta").unwrap(), "8");
    }

    #[test]
    fn parse_args_rejects_malformed() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("price hr 0.95")).is_err());
        assert!(parse_args(&argv("price --hr")).is_err());
    }

    #[test]
    fn price_reports_features() {
        let out = run(&argv("price --hr 0.95")).unwrap();
        assert!(out.contains("doubling bus"));
        assert!(out.contains("write buffers"));
        assert!(out.contains("pipelined memory"));
    }

    #[test]
    fn price_requires_hr() {
        let err = run(&argv("price")).unwrap_err();
        assert!(err.contains("--hr"));
    }

    #[test]
    fn crossover_matches_closed_form() {
        let out = run(&argv("crossover --chunks 8 --q 2")).unwrap();
        assert!(out.contains("β_m > 4.67"));
        let never = run(&argv("crossover --chunks 2 --q 2")).unwrap();
        assert!(never.contains("never"));
    }

    #[test]
    fn linesize_selects_and_agrees() {
        let out = run(&argv(
            "linesize --c 7 --beta 1 --curve 8:0.90,16:0.94,32:0.962,64:0.97,128:0.972",
        ))
        .unwrap();
        assert!(out.contains("agree: true"));
    }

    #[test]
    fn curve_parsing_errors() {
        assert!(parse_curve("8:0.9,16").is_err());
        assert!(parse_curve("x:0.9").is_err());
        assert!(parse_curve("8:1.5").is_err());
        assert_eq!(parse_curve("8:0.9,16:0.95").unwrap().len(), 2);
    }

    #[test]
    fn simulate_runs_a_proxy() {
        let out = run(&argv(
            "simulate --program ear --instructions 5000 --stall bnl3",
        ))
        .unwrap();
        assert!(out.contains("ear"));
        assert!(out.contains("CPI"));
    }

    #[test]
    fn simulate_rejects_unknowns() {
        assert!(run(&argv("simulate --program quake")).is_err());
        assert!(run(&argv("simulate --program ear --stall warp")).is_err());
    }

    #[test]
    fn design_finds_configurations_or_says_why_not() {
        let ok = run(&argv("design --hr 0.95 --target 5.0")).unwrap();
        assert!(ok.contains("pins"), "{ok}");
        let nope = run(&argv("design --hr 0.5 --target 1.1")).unwrap();
        assert!(nope.contains("No configuration"), "{nope}");
    }

    #[test]
    fn grid_runs_both_backends() {
        let sim = run(&argv("grid --backend sim --instructions 4000")).unwrap();
        assert!(sim.contains("backend sim"), "{sim}");
        assert!(sim.contains("ear"));
        assert!(sim.contains("points/s"));
        let ana = run(&argv(
            "grid --backend analytic --instructions 4000 --sets 32 --assoc 4 --target 0.5",
        ))
        .unwrap();
        assert!(ana.contains("backend analytic"), "{ana}");
        assert!(ana.contains("sets ×"), "{ana}");
        assert!(run(&argv("grid --backend magic")).is_err());
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&argv("help")).unwrap().contains("usage"));
        assert!(run(&argv("frobnicate")).is_err());
    }

    #[test]
    fn experiments_list_shows_registry() {
        let out = run(&argv("experiments list")).unwrap();
        assert!(out.contains("fig1"));
        assert!(out.contains("Design-space sweep"));
        // Bare `experiments` defaults to the listing.
        assert_eq!(run(&argv("experiments")).unwrap(), out);
    }

    #[test]
    fn experiments_rejects_unknown_action_and_missing_manifest() {
        assert!(run(&argv("experiments frobnicate")).is_err());
        let err = run(&argv("experiments verify --results-dir /no/such/dir")).unwrap_err();
        assert!(err.contains("reading"), "{err}");
    }

    #[test]
    fn cli_errors_map_to_distinct_exit_codes() {
        let usage = run_cli(&argv("frobnicate")).unwrap_err();
        assert_eq!(usage.exit_code(), 2);
        // A filter matching nothing is bad usage, not an empty success.
        let nomatch = run_cli(&argv("experiments run --filter no-such-tag")).unwrap_err();
        assert_eq!(nomatch.exit_code(), 2);
        assert!(nomatch.message().contains("no experiment matches"));
        let drift = CliError::Drift("x".into());
        assert_eq!(drift.exit_code(), 3);
        assert!(drift.partial_output().is_none());
        let failure = CliError::Failure {
            document: "partial\n".into(),
            summary: "fig2: failed".into(),
        };
        assert_eq!(failure.exit_code(), 1);
        assert_eq!(failure.partial_output(), Some("partial\n"));
        assert_eq!(failure.message(), "fig2: failed");
    }

    #[test]
    fn keep_going_flag_is_accepted() {
        let dir = std::env::temp_dir().join("cli_keep_going_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&argv(&format!(
            "experiments run --keep-going --filter fig2 --results-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("================ Figure 2 ================"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiments_run_filtered_writes_artifacts() {
        let dir = std::env::temp_dir().join("cli_experiments_run_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&argv(&format!(
            "experiments run --filter fig2 --results-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("================ Figure 2 ================"));
        assert!(dir.join("fig2.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
