//! Implementation of the `tradeoff` command-line tool.
//!
//! The binary (`src/bin/tradeoff-cli.rs`) is a thin wrapper; everything
//! here is plain functions over a typed [`Command`] so the behaviour is
//! unit tested. Every query subcommand is a thin formatter over
//! [`tradeoff::api::dispatch`] — the same call that answers the
//! `tradeoff-server` endpoints — so CLI and server answers are
//! byte-derived from one code path. Subcommands:
//!
//! * `price` — the hit ratio each feature is worth at a design point;
//! * `crossover` — where pipelined memory starts to win;
//! * `linesize` — optimal line size for a measured hit-ratio curve;
//! * `simulate` — run a SPEC92 proxy through the cycle-accurate
//!   simulator (memoised timeline replay, bit-identical to a full run);
//! * `design` — enumerate bus/buffer/pipeline configurations meeting a
//!   mean-access-time target at minimum pin cost;
//! * `grid` — answer a (size × line × assoc) hit-ratio grid with the
//!   simulated or the closed-form analytic backend;
//! * `query` — raw wire-format access: dispatch a JSON request locally,
//!   or act as a client against a running `tradeoff-server`;
//! * `experiments` — list, run (serially or `--jobs N`-parallel) and
//!   hash-verify the registered paper experiments.
//!
//! Option parsing converts `--key value` pairs to a JSON object and
//! lets [`QueryRequest::from_json`] validate it, so unknown flags and
//! malformed values are rejected by the same strict schema the server
//! enforces — always as bad usage (exit 2), never as a failure.

use crate::server;
use bench::queryenv::StoreWorkloads;
use report::{Json, Table};
use std::collections::BTreeMap;
use std::path::PathBuf;
use tradeoff::api::{
    self, ApiError, ApiErrorKind, DenseGrid, GridQuery, GridRows, QueryRequest, QueryResponse,
    WorkloadsResponse,
};
use tradeoff::linesize::LineCandidate;
use tradeoff::HitRatio;

/// A parsed `--key value` option map.
pub type Options = BTreeMap<String, String>;

/// A typed CLI failure carrying the exit code the binary maps it to.
///
/// The scheme matches the `exp` binary: `2` for bad usage (unknown
/// subcommand, malformed options, filters matching nothing), `1` for
/// experiment failures in a degraded run, `3` for manifest drift or an
/// artifact that could not be written.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage — exit 2.
    Usage(String),
    /// One or more experiments failed — exit 1. `document` holds the
    /// partial suite report to print on stdout before the summary.
    Failure {
        /// Partial suite document (may be empty for strict runs).
        document: String,
        /// One-line-per-failure summary for stderr.
        summary: String,
    },
    /// Manifest drift or artifact write failure — exit 3.
    Drift(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failure { .. } => 1,
            CliError::Usage(_) => 2,
            CliError::Drift(_) => 3,
        }
    }

    /// The user-facing message (stderr).
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Drift(m) => m,
            CliError::Failure { summary, .. } => summary,
        }
    }

    /// Partial output to print on stdout before the message, if any.
    pub fn partial_output(&self) -> Option<&str> {
        match self {
            CliError::Failure { document, .. } if !document.is_empty() => Some(document),
            _ => None,
        }
    }
}

/// Maps a typed API error onto the CLI's exit-code scheme: bad requests
/// are usage (exit 2), backend failures are failures (exit 1).
fn from_api(e: ApiError) -> CliError {
    match e.kind {
        ApiErrorKind::BadRequest => CliError::Usage(e.message),
        ApiErrorKind::Internal => CliError::Failure {
            document: String::new(),
            summary: e.message,
        },
    }
}

/// One fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `help` / `--help` / `-h`: print usage.
    Help,
    /// A classic subcommand: dispatch the typed request and render the
    /// human-readable report.
    Report(QueryRequest),
    /// `query --json …` without `--server`: dispatch locally, print the
    /// wire-format JSON response.
    Wire(QueryRequest),
    /// `query --server …`: client call against a running server.
    Client {
        /// `host:port` of the server.
        addr: String,
        /// What to ask it.
        call: ClientCall,
        /// Transient-failure retries (`--retries`, default 3): connect
        /// failures and `503 overloaded` are retried with jittered
        /// backoff, honouring the server's `Retry-After`.
        retries: u32,
    },
    /// `experiments …` over the bench registry.
    Experiments(ExperimentsCmd),
}

/// A client-mode call against a running `tradeoff-server`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientCall {
    /// `POST /query` with a typed request.
    Query(QueryRequest),
    /// `GET /stats`.
    Stats,
    /// `GET /experiments`.
    Experiments,
    /// `POST /shutdown` — graceful stop, with the server's shutdown
    /// token when it was started with one.
    Shutdown {
        /// Value of `--token`, sent as `{"token": …}` in the body.
        token: Option<String>,
    },
}

/// The `experiments` subcommand actions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentsCmd {
    /// List the registry.
    List,
    /// Run a filtered selection through the scheduler.
    Run {
        /// Tag/id filter (empty = all).
        filter: String,
        /// Parallel jobs.
        jobs: usize,
        /// Results directory override.
        results_dir: Option<PathBuf>,
        /// Keep going past failures, reporting a degraded suite.
        keep_going: bool,
    },
    /// Verify artifacts against the content-hashed manifest.
    Verify {
        /// Results directory override.
        results_dir: Option<PathBuf>,
        /// Manifest path override.
        manifest: Option<PathBuf>,
    },
}

/// Splits `--key value` pairs into an option map.
fn parse_opts<'a>(args: impl Iterator<Item = &'a String>) -> Result<Options, String> {
    let mut it = args;
    let mut opts = Options::new();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or(format!("expected --option, got {key:?}"))?;
        let value = it.next().ok_or(format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

/// Parses raw arguments into a typed [`Command`].
///
/// # Errors
///
/// [`CliError::Usage`] when the subcommand is missing or unknown, an
/// option is malformed, or a value fails the query schema.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let cmd = args.first().ok_or_else(|| CliError::Usage(usage()))?;
    match cmd.as_str() {
        "experiments" => parse_experiments(&args[1..]),
        "workloads" => parse_workloads(&args[1..]),
        "query" => parse_query(&args[1..]),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "price" | "crossover" | "linesize" | "simulate" | "design" | "grid" => {
            let opts = parse_opts(args[1..].iter()).map_err(CliError::Usage)?;
            Ok(Command::Report(query_from_options(cmd, &opts)?))
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n{}",
            usage()
        ))),
    }
}

/// Builds a typed query from a subcommand name and its option map by
/// round-tripping through the wire schema: the map becomes a JSON
/// object and [`QueryRequest::from_json`] applies the same strict
/// validation the server does (unknown keys rejected, exit 2).
fn query_from_options(cmd: &str, opts: &Options) -> Result<QueryRequest, CliError> {
    let mut fields = vec![("query".to_string(), Json::str(cmd))];
    for (key, value) in opts {
        // `--workload-file F` reads an inline spec; the wire field is
        // `workload` (simulate) or the one-element `workloads` array
        // (grid), so the strict schema still does the validation.
        if key == "workload-file" {
            let spec = read_spec_file(value)?;
            let (field, json) = match cmd {
                "grid" => ("workloads", Json::Arr(vec![spec])),
                _ => ("workload", spec),
            };
            fields.push((field.to_string(), json));
            continue;
        }
        let json = match key.as_str() {
            "curve" => {
                let curve = parse_curve(value).map_err(CliError::Usage)?;
                Json::Arr(
                    curve
                        .iter()
                        .map(|c| {
                            Json::Arr(vec![
                                Json::num(c.line_bytes),
                                Json::num(c.hit_ratio.value()),
                            ])
                        })
                        .collect(),
                )
            }
            "programs" => Json::Arr(
                value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(Json::str)
                    .collect(),
            ),
            _ => match value.parse::<f64>() {
                Ok(n) if n.is_finite() => Json::num(n),
                _ => Json::str(value.as_str()),
            },
        };
        fields.push((key.clone(), json));
    }
    QueryRequest::from_json(&Json::Obj(fields)).map_err(from_api)
}

/// Reads and parses a JSON workload-spec file into a [`Json`] value.
fn read_spec_file(path: &str) -> Result<Json, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("reading {path}: {e}")))?;
    Json::parse(&text).map_err(|e| CliError::Usage(format!("{path}: {e}")))
}

/// Parses the `query` subcommand: local wire dispatch or client mode.
fn parse_query(args: &[String]) -> Result<Command, CliError> {
    // `--shutdown` is a bare flag; the option grammar is strictly
    // `--key value` pairs, so strip it before parsing.
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let mut opts =
        parse_opts(args.iter().filter(|a| *a != "--shutdown")).map_err(CliError::Usage)?;
    let server = opts.remove("server");
    let json = opts.remove("json");
    let get = opts.remove("get");
    let token = opts.remove("token");
    let retries = opts.remove("retries");
    if let Some(stray) = opts.keys().next() {
        return Err(CliError::Usage(format!(
            "query does not take --{stray}\n{}",
            usage()
        )));
    }
    if token.is_some() && !shutdown {
        return Err(CliError::Usage(
            "--token only applies to --shutdown".to_string(),
        ));
    }
    if retries.is_some() && server.is_none() {
        return Err(CliError::Usage(
            "--retries only applies to --server mode".to_string(),
        ));
    }
    let retries: u32 = match retries {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--retries: not an integer: {v:?}")))?,
        None => DEFAULT_RETRIES,
    };
    let request = json
        .map(|text| QueryRequest::from_json_str(&text).map_err(from_api))
        .transpose()?;
    let call = match (shutdown, get, request) {
        (true, None, None) => ClientCall::Shutdown { token },
        (false, Some(what), None) => match what.as_str() {
            "stats" => ClientCall::Stats,
            "experiments" => ClientCall::Experiments,
            other => {
                return Err(CliError::Usage(format!(
                    "--get wants stats or experiments, got {other:?}"
                )))
            }
        },
        (false, None, Some(req)) => match server {
            Some(addr) => {
                return Ok(Command::Client {
                    addr,
                    call: ClientCall::Query(req),
                    retries,
                })
            }
            None => return Ok(Command::Wire(req)),
        },
        _ => {
            return Err(CliError::Usage(format!(
            "query needs exactly one of --json REQUEST, --get stats|experiments or --shutdown\n{}",
            usage()
        )))
        }
    };
    // Everything but a local --json dispatch needs a server to talk to.
    let addr = server.ok_or_else(|| {
        CliError::Usage("--get and --shutdown need --server HOST:PORT".to_string())
    })?;
    Ok(Command::Client {
        addr,
        call,
        retries,
    })
}

/// Parses the `experiments` subcommand actions.
fn parse_experiments(args: &[String]) -> Result<Command, CliError> {
    // `--keep-going` is a bare flag; strip it before `--key value`
    // parsing, as for `query --shutdown`.
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let args: Vec<&String> = args.iter().filter(|a| *a != "--keep-going").collect();
    let Some((action, rest)) = args.split_first() else {
        return Ok(Command::Experiments(ExperimentsCmd::List));
    };
    let mut opts = parse_opts(rest.iter().copied()).map_err(CliError::Usage)?;
    let cmd = match action.as_str() {
        "list" => ExperimentsCmd::List,
        "run" => ExperimentsCmd::Run {
            filter: opts.remove("filter").unwrap_or_default(),
            jobs: match opts.remove("jobs") {
                Some(v) => v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--jobs: not an integer: {v:?}")))?,
                None => 1,
            },
            results_dir: opts.remove("results-dir").map(PathBuf::from),
            keep_going,
        },
        "verify" => ExperimentsCmd::Verify {
            results_dir: opts.remove("results-dir").map(PathBuf::from),
            manifest: opts.remove("manifest").map(PathBuf::from),
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown experiments action {other:?}\n{}",
                usage()
            )))
        }
    };
    if let Some(stray) = opts.keys().next() {
        return Err(CliError::Usage(format!(
            "experiments {action} does not take --{stray}\n{}",
            usage()
        )));
    }
    Ok(Command::Experiments(cmd))
}

/// Parses the `workloads` subcommand: catalogue access routed through
/// the same wire schema the server answers (`list` is the default
/// action; `show` wants a built-in name, `validate` an inline spec
/// file).
fn parse_workloads(args: &[String]) -> Result<Command, CliError> {
    let (action, rest) = match args.split_first() {
        Some((a, rest)) => (a.as_str(), rest),
        None => ("list", args),
    };
    let mut opts = parse_opts(rest.iter()).map_err(CliError::Usage)?;
    let mut fields = vec![
        ("query".to_string(), Json::str("workloads")),
        ("action".to_string(), Json::str(action)),
    ];
    match action {
        "list" => {}
        "show" => {
            let name = opts.remove("name").ok_or_else(|| {
                CliError::Usage(format!("workloads show needs --name NAME\n{}", usage()))
            })?;
            fields.push(("name".to_string(), Json::str(name)));
        }
        "validate" => {
            let file = opts.remove("file").ok_or_else(|| {
                CliError::Usage(format!(
                    "workloads validate needs --file SPEC.json\n{}",
                    usage()
                ))
            })?;
            fields.push(("workload".to_string(), read_spec_file(&file)?));
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown workloads action {other:?}\n{}",
                usage()
            )))
        }
    }
    if let Some(stray) = opts.keys().next() {
        return Err(CliError::Usage(format!(
            "workloads {action} does not take --{stray}\n{}",
            usage()
        )));
    }
    Ok(Command::Report(
        QueryRequest::from_json(&Json::Obj(fields)).map_err(from_api)?,
    ))
}

fn usage() -> String {
    "usage: tradeoff <price|crossover|linesize|simulate|design|grid|query|workloads|experiments> [--option value]...\n\
     \n\
     price       --bus 4 --line 32 --beta 8 --hr 0.95 [--alpha 0.5] [--q 2] [--width 1]\n\
     crossover   --chunks 8 --q 2 [--alpha 0.5]\n\
     linesize    --c 7 --beta 1 --bus 4 --curve 8:0.90,16:0.94,32:0.96,64:0.97\n\
     simulate    --program ear | --workload-file SPEC.json\n\
     \u{20}           [--instructions 100000] [--stall fs|bl|bnl1|bnl2|bnl3|nb]\n\
     \u{20}           [--cache 8192] [--line 32] [--bus 4] [--beta 8]\n\
     design      --hr 0.95 --target 3.5 [--line 32] [--beta 8] [--alpha 0.5]\n\
     grid        [--backend sim|analytic] [--instructions 120000] [--target 0.9]\n\
     \u{20}           [--sets 2084] [--assoc 16]  (dense bounds, analytic backend only)\n\
     \u{20}           [--programs ear,doduc] [--workload-file SPEC.json]\n\
     query       --json REQUEST            (dispatch locally, print wire JSON)\n\
     query       --server HOST:PORT --json REQUEST | --get stats|experiments\n\
     \u{20}           | --shutdown [--token TOKEN]   [--retries N (default 3)]\n\
     workloads   list | show --name NAME | validate --file SPEC.json\n\
     experiments list\n\
     experiments run    [--filter <tag|id>] [--jobs N] [--results-dir DIR] [--keep-going]\n\
     experiments verify [--results-dir DIR] [--manifest FILE]\n\
     \n\
     exit codes: 0 ok, 1 experiment failure, 2 bad usage, 3 manifest drift"
        .to_string()
}

/// Runs one CLI invocation, keeping the typed [`CliError`] so the
/// binary can map failures to distinct exit codes.
///
/// # Errors
///
/// [`CliError::Usage`] on bad arguments, [`CliError::Failure`] when
/// experiments or a backend fail, [`CliError::Drift`] on manifest drift
/// or write errors.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    match parse_args(args)? {
        Command::Help => Ok(usage()),
        Command::Report(req) => {
            let started = std::time::Instant::now();
            let resp = api::dispatch(&req, &StoreWorkloads).map_err(from_api)?;
            Ok(render(&req, &resp, started.elapsed().as_secs_f64()))
        }
        Command::Wire(req) => {
            let resp = api::dispatch(&req, &StoreWorkloads).map_err(from_api)?;
            Ok(resp.to_json_string())
        }
        Command::Client {
            addr,
            call,
            retries,
        } => client(&addr, &call, retries),
        Command::Experiments(cmd) => experiments(&cmd),
    }
}

/// Default `--retries` for client mode, matching
/// `bench::sched::RetryPolicy`'s transient budget.
const DEFAULT_RETRIES: u32 = 3;

/// How long to wait before retry number `attempt`: the server's
/// `Retry-After` hint when it gave one (capped so a pessimistic server
/// cannot stall the CLI), otherwise linear backoff plus a little jitter
/// so synchronised retriers spread out — `sched::RetryPolicy`'s
/// discipline applied to the wire.
fn retry_pause(attempt: u32, retry_after: Option<u64>) -> std::time::Duration {
    if let Some(secs) = retry_after {
        return std::time::Duration::from_secs(secs).min(std::time::Duration::from_secs(2));
    }
    let jitter_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) % 25)
        .unwrap_or(0);
    std::time::Duration::from_millis(50 * u64::from(attempt) + jitter_ms)
}

/// Performs one client-mode call against a running server, riding out
/// transient failures: connect/protocol errors and `503 overloaded`
/// responses are retried up to `retries` times with bounded jittered
/// backoff (honouring `Retry-After`), mirroring the scheduler's
/// transient-retry semantics. The 200 body is returned without its
/// trailing newline, so `println!` in the binary reproduces the server
/// bytes exactly — and matches what the same request prints via local
/// dispatch.
fn client(addr: &str, call: &ClientCall, retries: u32) -> Result<String, CliError> {
    let (method, path, body) = match call {
        ClientCall::Query(req) => ("POST", "/query", Some(req.to_json().render())),
        ClientCall::Stats => ("GET", "/stats", None),
        ClientCall::Experiments => ("GET", "/experiments", None),
        ClientCall::Shutdown { token } => (
            "POST",
            "/shutdown",
            token
                .as_ref()
                .map(|t| Json::obj(vec![("token", Json::str(t.as_str()))]).render()),
        ),
    };
    let mut attempt = 0u32;
    loop {
        match server::http_request(addr, method, path, body.as_deref()) {
            Ok(reply) if reply.status == 503 && attempt < retries => {
                attempt += 1;
                std::thread::sleep(retry_pause(attempt, reply.retry_after));
            }
            Err(_) if attempt < retries => {
                attempt += 1;
                std::thread::sleep(retry_pause(attempt, None));
            }
            Ok(reply) => {
                let body = reply.body.trim_end_matches('\n').to_string();
                return match reply.status {
                    200 => Ok(body),
                    400..=499 => Err(CliError::Usage(body)),
                    _ => Err(CliError::Failure {
                        document: String::new(),
                        summary: body,
                    }),
                };
            }
            Err(summary) => {
                return Err(CliError::Failure {
                    document: String::new(),
                    summary,
                })
            }
        }
    }
}

/// Renders the human-readable report for a dispatched query — the
/// formats the pre-API CLI printed, reproduced from the typed response.
fn render(req: &QueryRequest, resp: &QueryResponse, secs: f64) -> String {
    match resp {
        QueryResponse::Price(r) => {
            let q = &r.query;
            let mut t = Table::new(["feature", "worth (ΔHR)", "equal-performance HR"]);
            for f in &r.features {
                t.row([
                    f.feature.clone(),
                    format!("{:+.3}%", 100.0 * f.delta_hr),
                    format!("{:.2}%", 100.0 * f.equal_performance_hr),
                ]);
            }
            format!(
                "Design point: D={}B L={}B β_m={} α={} HR={:.2}% issue width {}\n{}",
                q.bus,
                q.line,
                q.beta,
                q.alpha,
                100.0 * q.hr,
                q.width,
                t.render()
            )
        }
        QueryResponse::Crossover(r) => {
            let q = &r.query;
            let fmt = |x: Option<f64>| x.map_or("never".to_string(), |b| format!("β_m > {b:.2}"));
            format!(
                "L/D = {}, q = {}, α = {}:\n  pipelined beats doubling bus: {}\n  pipelined beats write buffers: {}\n",
                q.chunks,
                q.q,
                q.alpha,
                fmt(r.vs_double_bus),
                fmt(r.vs_write_buffers)
            )
        }
        QueryResponse::Linesize(r) => {
            let q = &r.query;
            format!(
                "fill time c={} β={}, D={}B:\n  Smith (Eq. 16): {} B\n  paper (Eq. 19): {} B\n  agree: {}\n",
                q.c, q.beta, q.bus, r.smith_line_bytes, r.eq19_line_bytes, r.agree
            )
        }
        QueryResponse::Design(r) => {
            let q = &r.query;
            if r.feasible.is_empty() {
                return format!(
                    "No configuration reaches a mean access time of {} at HR {:.2}% — \
                     raise the hit ratio or relax the target.\n",
                    q.target,
                    100.0 * q.hr
                );
            }
            let mut t = Table::new([
                "pins",
                "bus",
                "write buffers",
                "pipelined",
                "mean access time",
            ]);
            for row in &r.feasible {
                t.row([
                    row.pins.to_string(),
                    format!("{}-bit", row.bus as u64 * 8),
                    row.write_buffers.to_string(),
                    row.pipelined.to_string(),
                    format!("{:.3}", row.mean_access_time),
                ]);
            }
            format!(
                "Configurations meeting mean access time ≤ {} at HR {:.2}% (fewest pins first):\n{}",
                q.target,
                100.0 * q.hr,
                t.render()
            )
        }
        QueryResponse::Simulate(r) => {
            let q = &r.query;
            let stall =
                api::parse_stall(&q.stall).map_or_else(|_| q.stall.clone(), |s| s.to_string());
            format!(
                "{} × {} instructions, {stall}, {}B cache, L={}, D={}, β={}:\n  \
                 {} cycles / {} instr (CPI {:.3}), HR {:.4}, φ {:.2}, α {:.3}\n",
                q.workload.label(),
                q.instructions,
                q.cache,
                q.line,
                q.bus,
                q.beta,
                r.cycles,
                q.instructions,
                r.cpi,
                r.hit_ratio,
                r.phi,
                r.alpha
            )
        }
        QueryResponse::Grid(r) => {
            let rate = r.points as f64 / secs;
            match &r.rows {
                GridRows::Sim(rows) => {
                    let mut t = Table::new(["program", "best HR", "geometry"]);
                    for row in rows {
                        t.row([
                            row.program.clone(),
                            format!("{:.4}", row.best_hit_ratio),
                            format!(
                                "{} B, {} B lines, {}-way",
                                row.cache_bytes, row.line_bytes, row.assoc
                            ),
                        ]);
                    }
                    format!(
                        "backend sim: {} grid points in {secs:.2}s ({rate:.0} points/s)\n{}",
                        r.points,
                        t.render()
                    )
                }
                GridRows::Dense(rows) => {
                    let gq = match req {
                        QueryRequest::Grid(gq) => gq.clone(),
                        _ => GridQuery::default(),
                    };
                    let per_workload = DenseGrid {
                        line_sizes: vec![8, 16, 32, 64, 128],
                        max_sets: gq.max_sets,
                        max_assoc: gq.max_assoc,
                    }
                    .points();
                    let mut t = Table::new(["program", "cache", "geometry", "hit ratio"]);
                    for row in rows {
                        t.row(match &row.best {
                            Some(b) => [
                                row.program.clone(),
                                format!("{} B", b.cache_bytes),
                                format!("{} sets × {} B × {}-way", b.sets, b.line_bytes, b.assoc),
                                format!("{:.4}", b.hit_ratio),
                            ],
                            None => [
                                row.program.clone(),
                                "-".to_string(),
                                "unreachable".to_string(),
                                "-".to_string(),
                            ],
                        });
                    }
                    format!(
                        "backend analytic: {} grid points in {secs:.2}s ({rate:.0} points/s, \
                         including one histogram fold per proxy)\n\
                         \nCheapest geometry reaching HR ≥ {} on the dense analytic grid \
                         ({per_workload} points/workload, {} total — set counts 1..={}, closed \
                         form, no simulation):\n{}",
                        r.points,
                        r.target.unwrap_or(gq.target),
                        r.points,
                        gq.max_sets,
                        t.render()
                    )
                }
            }
        }
        QueryResponse::Experiments(r) => {
            let mut t = Table::new(["id", "tags", "shared traces", "title"]);
            for e in &r.experiments {
                t.row([
                    e.id.clone(),
                    e.tags.join(","),
                    e.traces.join(","),
                    e.title.clone(),
                ]);
            }
            t.render()
        }
        QueryResponse::Workloads(r) => match r {
            WorkloadsResponse::List(infos) => {
                let mut t = Table::new(["name", "id"]);
                for i in infos {
                    t.row([i.name.clone(), i.id.clone()]);
                }
                t.render()
            }
            WorkloadsResponse::Show { name, id, spec } => {
                format!("{name} ({id}):\n{}\n", spec.to_json().render())
            }
            WorkloadsResponse::Validated { id, label } => {
                format!("valid: {label} ({id})\n")
            }
        },
    }
}

/// Parses a `8:0.90,16:0.94` hit-ratio curve.
///
/// # Errors
///
/// Returns a message for malformed pairs.
pub fn parse_curve(spec: &str) -> Result<Vec<LineCandidate>, String> {
    spec.split(',')
        .map(|pair| {
            let (l, h) = pair
                .split_once(':')
                .ok_or(format!("bad curve entry {pair:?}"))?;
            let line_bytes: f64 = l
                .trim()
                .parse()
                .map_err(|_| format!("bad line size {l:?}"))?;
            let hr: f64 = h
                .trim()
                .parse()
                .map_err(|_| format!("bad hit ratio {h:?}"))?;
            Ok(LineCandidate {
                line_bytes,
                hit_ratio: HitRatio::new(hr).map_err(|e| e.to_string())?,
            })
        })
        .collect()
}

/// Maps a [`bench::Error`] from the suite driver to the CLI's typed
/// error: no-match filters are usage, experiment failures are failures,
/// write errors are drift-class (the results directory is suspect).
fn from_bench(e: bench::Error) -> CliError {
    match e {
        bench::Error::NoMatch { .. } => CliError::Usage(e.to_string()),
        bench::Error::Experiment { .. } => CliError::Failure {
            document: String::new(),
            summary: e.to_string(),
        },
        bench::Error::Write { .. } => CliError::Drift(e.to_string()),
    }
}

/// The `tradeoff experiments <list|run|verify>` subcommand over the
/// bench registry.
fn experiments(cmd: &ExperimentsCmd) -> Result<String, CliError> {
    match cmd {
        ExperimentsCmd::List => {
            // The listing is the `experiments` query, rendered.
            let req = QueryRequest::Experiments;
            let resp = api::dispatch(&req, &StoreWorkloads).map_err(from_api)?;
            Ok(render(&req, &resp, 0.0))
        }
        ExperimentsCmd::Run {
            filter,
            jobs,
            results_dir,
            keep_going,
        } => {
            let dir = results_dir
                .clone()
                .unwrap_or_else(bench::common::results_dir);
            let sched_opts =
                bench::sched::SuiteOptions::new(*jobs, bench::registry::RunCtx::standard())
                    .keep_going(*keep_going);
            let outcome = bench::sched::drive(filter, &sched_opts, &dir).map_err(from_bench)?;
            eprintln!("{}", outcome.run.footer());
            if outcome.run.has_failures() {
                return Err(CliError::Failure {
                    document: outcome.run.document(),
                    summary: outcome.run.failure_summary(),
                });
            }
            Ok(outcome.run.document())
        }
        ExperimentsCmd::Verify {
            results_dir,
            manifest,
        } => {
            let dir = results_dir
                .clone()
                .unwrap_or_else(bench::common::results_dir);
            let manifest_path = manifest
                .clone()
                .unwrap_or_else(|| dir.join(report::MANIFEST_NAME));
            let json = std::fs::read_to_string(&manifest_path).map_err(|e| {
                CliError::Usage(format!("reading {}: {e}", manifest_path.display()))
            })?;
            let manifest = report::Manifest::parse(&json).map_err(CliError::Usage)?;
            let drift = manifest.verify_dir(&dir);
            if drift.is_empty() {
                Ok(format!(
                    "{} artifacts verified against {}\n",
                    manifest.entries.len(),
                    manifest_path.display()
                ))
            } else {
                Err(CliError::Drift(
                    drift
                        .iter()
                        .map(|d| format!("drift: {d}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn go(s: &str) -> Result<String, CliError> {
        run_cli(&argv(s))
    }

    #[test]
    fn parse_args_builds_typed_commands() {
        let Command::Report(QueryRequest::Price(p)) =
            parse_args(&argv("price --hr 0.95 --beta 8")).unwrap()
        else {
            panic!("expected a price report command");
        };
        assert_eq!(p.hr, 0.95);
        assert_eq!(p.beta, 8.0);
        assert_eq!(p.bus, 4.0, "defaults fill unspecified flags");
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&argv("experiments")).unwrap(),
            Command::Experiments(ExperimentsCmd::List)
        );
    }

    #[test]
    fn parse_args_rejects_malformed() {
        for bad in [
            "",
            "price hr 0.95",
            "price --hr",
            "price --hr 0.95 --frob 1",
        ] {
            let err = parse_args(&argv(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?} must be usage, not failure");
        }
        assert!(parse_args(&argv("price --frob 1"))
            .unwrap_err()
            .message()
            .contains("frob"));
    }

    #[test]
    fn price_reports_features() {
        let out = go("price --hr 0.95").unwrap();
        assert!(out.contains("doubling bus"));
        assert!(out.contains("write buffers"));
        assert!(out.contains("pipelined memory"));
        assert!(out.contains("HR=95.00%"), "{out}");
    }

    #[test]
    fn price_requires_hr() {
        let err = go("price").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("hr"));
    }

    #[test]
    fn crossover_matches_closed_form() {
        let out = go("crossover --chunks 8 --q 2").unwrap();
        assert!(out.contains("β_m > 4.67"));
        let never = go("crossover --chunks 2 --q 2").unwrap();
        assert!(never.contains("never"));
    }

    #[test]
    fn linesize_selects_and_agrees() {
        let out = go("linesize --c 7 --beta 1 --curve 8:0.90,16:0.94,32:0.962,64:0.97,128:0.972")
            .unwrap();
        assert!(out.contains("agree: true"));
    }

    #[test]
    fn curve_parsing_errors() {
        assert!(parse_curve("8:0.9,16").is_err());
        assert!(parse_curve("x:0.9").is_err());
        assert!(parse_curve("8:1.5").is_err());
        assert_eq!(parse_curve("8:0.9,16:0.95").unwrap().len(), 2);
    }

    #[test]
    fn simulate_runs_a_proxy() {
        let out = go("simulate --program ear --instructions 5000 --stall bnl3").unwrap();
        assert!(out.contains("ear"));
        assert!(out.contains("CPI"));
    }

    #[test]
    fn simulate_rejects_unknowns() {
        assert_eq!(go("simulate --program quake").unwrap_err().exit_code(), 2);
        assert_eq!(
            go("simulate --program ear --stall warp")
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn design_finds_configurations_or_says_why_not() {
        let ok = go("design --hr 0.95 --target 5.0").unwrap();
        assert!(ok.contains("pins"), "{ok}");
        let nope = go("design --hr 0.5 --target 1.1").unwrap();
        assert!(nope.contains("No configuration"), "{nope}");
    }

    #[test]
    fn grid_runs_both_backends() {
        let sim = go("grid --backend sim --instructions 4000").unwrap();
        assert!(sim.contains("backend sim"), "{sim}");
        assert!(sim.contains("ear"));
        assert!(sim.contains("points/s"));
        let ana =
            go("grid --backend analytic --instructions 4000 --sets 32 --assoc 4 --target 0.5")
                .unwrap();
        assert!(ana.contains("backend analytic"), "{ana}");
        assert!(ana.contains("sets ×"), "{ana}");
    }

    #[test]
    fn grid_rejects_unknown_backend_as_usage() {
        // The satellite fix: a bad flag value is exit 2, not 1.
        let err = go("grid --backend magic").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("magic"), "{}", err.message());
    }

    #[test]
    fn help_and_unknown() {
        assert!(go("help").unwrap().contains("usage"));
        assert_eq!(go("frobnicate").unwrap_err().exit_code(), 2);
    }

    #[test]
    fn query_wire_output_is_the_dispatch_wire_form() {
        let req_text = r#"{"query":"crossover","chunks":8}"#;
        let out = run_cli(&[
            "query".to_string(),
            "--json".to_string(),
            req_text.to_string(),
        ])
        .unwrap();
        let req = QueryRequest::from_json_str(req_text).unwrap();
        let direct = api::dispatch(&req, &StoreWorkloads)
            .unwrap()
            .to_json_string();
        assert_eq!(out, direct, "CLI wire mode must be dispatch, verbatim");
        assert!(
            out.starts_with(r#"{"ok":true,"query":"crossover""#),
            "{out}"
        );
    }

    #[test]
    fn query_subcommand_validates_its_grammar() {
        // No action at all.
        assert_eq!(go("query").unwrap_err().exit_code(), 2);
        // --get and --shutdown need a server.
        assert_eq!(go("query --get stats").unwrap_err().exit_code(), 2);
        assert_eq!(go("query --shutdown").unwrap_err().exit_code(), 2);
        // Unknown --get target.
        assert_eq!(
            go("query --server 127.0.0.1:1 --get frob")
                .unwrap_err()
                .exit_code(),
            2
        );
        // Stray options are rejected.
        assert_eq!(go("query --frob 1").unwrap_err().exit_code(), 2);
        // Malformed request JSON is usage, not failure.
        let err = run_cli(&[
            "query".to_string(),
            "--json".to_string(),
            "{nope".to_string(),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        // A client call parses into a typed command.
        let cmd = parse_args(&[
            "query".to_string(),
            "--server".to_string(),
            "127.0.0.1:7878".to_string(),
            "--shutdown".to_string(),
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                addr: "127.0.0.1:7878".to_string(),
                call: ClientCall::Shutdown { token: None },
                retries: 3,
            }
        );
        // --token rides along with --shutdown, and only with it.
        let cmd = parse_args(&argv(
            "query --server 127.0.0.1:7878 --shutdown --token s3cret",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                addr: "127.0.0.1:7878".to_string(),
                call: ClientCall::Shutdown {
                    token: Some("s3cret".to_string()),
                },
                retries: 3,
            }
        );
        let err = go("query --server 127.0.0.1:1 --get stats --token x").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("token"), "{}", err.message());
        // --retries parses in server mode and is rejected elsewhere.
        let cmd = parse_args(&argv(
            "query --server 127.0.0.1:7878 --get stats --retries 0",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                addr: "127.0.0.1:7878".to_string(),
                call: ClientCall::Stats,
                retries: 0,
            }
        );
        assert_eq!(
            go(r#"query --json {"query":"experiments"} --retries 2"#)
                .unwrap_err()
                .exit_code(),
            2,
            "--retries without --server is a usage error"
        );
        assert_eq!(
            go("query --server 127.0.0.1:1 --get stats --retries nope")
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn client_mode_reports_connection_failures_as_failures() {
        // Nothing listens on a fresh ephemeral port that we bind and
        // immediately close — keep the OS from having a listener there.
        let err = go("query --server 127.0.0.1:9 --get stats").unwrap_err();
        assert_eq!(err.exit_code(), 1, "{}", err.message());
    }

    #[test]
    fn workloads_subcommand_lists_shows_and_validates() {
        let list = go("workloads").unwrap();
        for name in ["nasa7", "swm256", "wave5", "ear", "doduc", "hydro2d"] {
            assert!(list.contains(name), "missing {name} in {list}");
        }
        assert_eq!(go("workloads list").unwrap(), list);

        let shown = go("workloads show --name ear").unwrap();
        assert!(shown.contains("\"kind\""), "{shown}");
        assert!(shown.contains("ear ("), "{shown}");
        assert_eq!(
            go("workloads show --name quake").unwrap_err().exit_code(),
            2
        );
        assert_eq!(go("workloads show").unwrap_err().exit_code(), 2);
        assert_eq!(go("workloads frobnicate").unwrap_err().exit_code(), 2);
        assert_eq!(
            go("workloads list --name x").unwrap_err().exit_code(),
            2,
            "stray workloads flags are usage errors"
        );

        let dir = std::env::temp_dir().join("cli_workloads_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("spec.json");
        std::fs::write(
            &file,
            r#"{"name":"tiny","pattern":{"kind":"working_set","base":0,"bytes":4096,"store_fraction":0.2,"elem_size":8}}"#,
        )
        .unwrap();
        let out = go(&format!("workloads validate --file {}", file.display())).unwrap();
        assert!(out.contains("valid: tiny"), "{out}");
        std::fs::write(&file, r#"{"pattern":{"kind":"warp"}}"#).unwrap();
        let err = go(&format!("workloads validate --file {}", file.display())).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = go("workloads validate --file /no/such/spec.json").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("reading"), "{}", err.message());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_file_answers_like_the_inline_wire_form() {
        // `simulate --workload-file F` must be the same dispatch as the
        // wire request carrying the parsed spec inline.
        let dir = std::env::temp_dir().join("cli_workload_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("spec.json");
        let spec = r#"{"name":"probe","pattern":{"kind":"strided","base":0,"region_bytes":8192,"stride":16,"elem_size":8,"store_period":4}}"#;
        std::fs::write(&file, spec).unwrap();
        let via_file = go(&format!(
            "simulate --workload-file {} --instructions 4000",
            file.display()
        ))
        .unwrap();
        let req_text = format!(r#"{{"query":"simulate","workload":{spec},"instructions":4000}}"#);
        let req = QueryRequest::from_json_str(&req_text).unwrap();
        let resp = api::dispatch(&req, &StoreWorkloads).unwrap();
        assert_eq!(via_file, render(&req, &resp, 0.0));
        assert!(via_file.contains("probe"), "{via_file}");

        let grid = go(&format!(
            "grid --backend analytic --instructions 4000 --workload-file {} \
             --sets 16 --assoc 2 --target 0.5",
            file.display()
        ))
        .unwrap();
        assert!(grid.contains("probe"), "{grid}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiments_list_shows_registry() {
        let out = go("experiments list").unwrap();
        assert!(out.contains("fig1"));
        assert!(out.contains("Design-space sweep"));
        // Bare `experiments` defaults to the listing.
        assert_eq!(go("experiments").unwrap(), out);
    }

    #[test]
    fn experiments_rejects_unknown_action_and_missing_manifest() {
        assert_eq!(go("experiments frobnicate").unwrap_err().exit_code(), 2);
        assert_eq!(
            go("experiments run --frob 1").unwrap_err().exit_code(),
            2,
            "stray experiment flags are usage errors"
        );
        let err = go("experiments verify --results-dir /no/such/dir").unwrap_err();
        assert!(err.message().contains("reading"), "{}", err.message());
    }

    #[test]
    fn cli_errors_map_to_distinct_exit_codes() {
        let usage = go("frobnicate").unwrap_err();
        assert_eq!(usage.exit_code(), 2);
        // A filter matching nothing is bad usage, not an empty success.
        let nomatch = go("experiments run --filter no-such-tag").unwrap_err();
        assert_eq!(nomatch.exit_code(), 2);
        assert!(nomatch.message().contains("no experiment matches"));
        let drift = CliError::Drift("x".into());
        assert_eq!(drift.exit_code(), 3);
        assert!(drift.partial_output().is_none());
        let failure = CliError::Failure {
            document: "partial\n".into(),
            summary: "fig2: failed".into(),
        };
        assert_eq!(failure.exit_code(), 1);
        assert_eq!(failure.partial_output(), Some("partial\n"));
        assert_eq!(failure.message(), "fig2: failed");
    }

    #[test]
    fn keep_going_flag_is_accepted() {
        let dir = std::env::temp_dir().join("cli_keep_going_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = go(&format!(
            "experiments run --keep-going --filter fig2 --results-dir {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("================ Figure 2 ================"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiments_run_filtered_writes_artifacts() {
        let dir = std::env::temp_dir().join("cli_experiments_run_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = go(&format!(
            "experiments run --filter fig2 --results-dir {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("================ Figure 2 ================"));
        assert!(dir.join("fig2.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
