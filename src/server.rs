//! `tradeoff-server`: the long-running HTTP/JSON query service.
//!
//! A std-only HTTP/1.1 server (hand-rolled over [`std::net::TcpListener`]
//! — the workspace's vendored deps are offline stand-ins, so there is no
//! hyper/axum to lean on) that keeps the `bench` trace store warm across
//! requests and answers the typed query API:
//!
//! * `POST /query` — one [`tradeoff::api::QueryRequest`] in, one
//!   response (or typed error) out. The body is byte-identical to what
//!   `tradeoff-cli query --json …` prints for the same request: both are
//!   `dispatch(req, &StoreWorkloads)` plus [`report::Json::render`].
//! * `GET /experiments` — the registry listing, same bytes as a
//!   `{"query":"experiments"}` query.
//! * `GET /stats` — request/latency counters plus the full
//!   [`bench::tracestore::Stats`] snapshot (hits, misses, evictions,
//!   coalesced waits, resident bytes, poison recoveries).
//! * `POST /shutdown` — graceful stop: the acceptor closes, queued and
//!   in-flight requests drain, workers join, `serve` returns. Guarded:
//!   with `--shutdown-token` set every caller must present the token in
//!   the body (`{"token": …}`); without one, only loopback peers may
//!   stop the server. Refusals are 403 and the server keeps serving.
//!
//! Requests are handled by a small worker pool; concurrent queries that
//! miss on the same trace-store key block on one extraction (the
//! store's key gates — `sched`'s warm-key discipline generalised to the
//! request path) instead of folding the workload N times. See
//! `DESIGN.md` §14.

use bench::queryenv::StoreWorkloads;
use bench::tracestore;
use report::Json;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tradeoff::api::{dispatch, ApiError, QueryRequest};

/// Largest request body the server will read.
const MAX_BODY_BYTES: usize = 1 << 20;

/// Per-connection socket timeout: a stalled peer cannot wedge a worker
/// (or the graceful drain) indefinitely.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration, parsed from `tradeoff-server` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:7878` by default; use port `0` for
    /// an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// When set, the actual bound address is written here after bind —
    /// how ephemeral-port callers (tests, scripts) learn the port.
    pub addr_file: Option<std::path::PathBuf>,
    /// `POST /shutdown` authorisation. When set, every shutdown request
    /// (loopback included) must carry `{"token": …}` matching this
    /// value; when unset, only loopback peers may stop the server.
    /// Either way a refused shutdown is a 403, never a stop.
    pub shutdown_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8),
            addr_file: None,
            shutdown_token: None,
        }
    }
}

/// Latency accumulator for one query kind.
#[derive(Debug, Clone, Copy, Default)]
struct KindStats {
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

/// Process-wide request counters backing `GET /stats`.
#[derive(Debug, Default)]
struct ServerStats {
    requests: AtomicU64,
    errors: AtomicU64,
    by_kind: Mutex<BTreeMap<String, KindStats>>,
}

impl ServerStats {
    fn record(&self, kind: &str, elapsed: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut map = self
            .by_kind
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let e = map.entry(kind.to_string()).or_default();
        e.count += 1;
        e.total_micros += micros;
        e.max_micros = e.max_micros.max(micros);
    }

    /// The `/stats` document: server request/latency counters plus the
    /// trace store's full observability snapshot.
    fn to_json(&self) -> Json {
        let map = self
            .by_kind
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let queries = map
            .iter()
            .map(|(kind, s)| {
                (
                    kind.clone(),
                    Json::obj(vec![
                        ("count", Json::num(s.count as f64)),
                        ("total_micros", Json::num(s.total_micros as f64)),
                        ("max_micros", Json::num(s.max_micros as f64)),
                        (
                            "mean_micros",
                            Json::num(
                                s.total_micros.checked_div(s.count).unwrap_or_default() as f64
                            ),
                        ),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        drop(map);
        let st = tracestore::stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "server",
                Json::obj(vec![
                    (
                        "requests",
                        Json::num(self.requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "errors",
                        Json::num(self.errors.load(Ordering::Relaxed) as f64),
                    ),
                    ("queries", Json::Obj(queries)),
                ]),
            ),
            (
                "store",
                Json::obj(vec![
                    ("trace_hits", Json::num(st.counts.trace_hits as f64)),
                    ("trace_misses", Json::num(st.counts.trace_misses as f64)),
                    ("timeline_hits", Json::num(st.counts.timeline_hits as f64)),
                    (
                        "timeline_misses",
                        Json::num(st.counts.timeline_misses as f64),
                    ),
                    ("hist_hits", Json::num(st.counts.hist_hits as f64)),
                    ("hist_misses", Json::num(st.counts.hist_misses as f64)),
                    ("trace_evictions", Json::num(st.trace_evictions as f64)),
                    ("hist_evictions", Json::num(st.hist_evictions as f64)),
                    ("coalesced_waits", Json::num(st.coalesced_waits as f64)),
                    ("trace_bytes", Json::num(st.trace_bytes as f64)),
                    ("hist_bytes", Json::num(st.hist_bytes as f64)),
                    ("poison_recoveries", Json::num(st.poison_recoveries as f64)),
                ]),
            ),
        ])
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads and parses one HTTP/1.1 request from the stream.
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".to_string());
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body exceeds {MAX_BODY_BYTES} bytes"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Writes one HTTP/1.1 response (JSON body, connection closed after).
fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let msg = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    );
    // A peer that vanished mid-response is its own problem; the worker
    // moves on to the next request either way.
    let _ = stream.write_all(msg.as_bytes());
    let _ = stream.flush();
}

/// Checks a `POST /shutdown` against the auth policy. With a configured
/// token, *every* caller — loopback included — must present it in the
/// body as `{"token": …}`, which keeps the refusal path testable end to
/// end. Without one, only loopback peers may stop the server, so a
/// `--addr 0.0.0.0` deployment is not stoppable by any host that can
/// reach the port.
fn shutdown_allowed(
    body: &str,
    peer: Option<&SocketAddr>,
    token: Option<&str>,
) -> Result<(), String> {
    match token {
        Some(expected) => {
            let presented = Json::parse(body.trim())
                .ok()
                .and_then(|j| j.get("token").and_then(Json::as_str).map(str::to_string));
            if presented.as_deref() == Some(expected) {
                Ok(())
            } else {
                Err("shutdown requires the configured token".to_string())
            }
        }
        None => {
            if peer.is_some_and(|p| p.ip().is_loopback()) {
                Ok(())
            } else {
                Err("shutdown without a configured --shutdown-token is loopback-only".to_string())
            }
        }
    }
}

/// Routes one request. Returns `(status, body, query kind, shutdown)`.
fn route(
    req: &Request,
    peer: Option<&SocketAddr>,
    token: Option<&str>,
) -> (u16, String, &'static str, bool) {
    let answer = |r: Result<tradeoff::api::QueryResponse, ApiError>| match r {
        Ok(resp) => (200, format!("{}\n", resp.to_json_string())),
        Err(err) => (
            err.kind.http_status(),
            format!("{}\n", err.to_json().render()),
        ),
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => {
            let (status, body) = answer(
                QueryRequest::from_json_str(&req.body).and_then(|q| dispatch(&q, &StoreWorkloads)),
            );
            (status, body, "query", false)
        }
        ("GET", "/experiments") => {
            let (status, body) = answer(dispatch(&QueryRequest::Experiments, &StoreWorkloads));
            (status, body, "experiments", false)
        }
        ("GET", "/stats") => (200, String::new(), "stats", false), // body filled by caller
        ("POST", "/shutdown") => match shutdown_allowed(&req.body, peer, token) {
            Ok(()) => (
                200,
                format!("{}\n", Json::obj(vec![("ok", Json::Bool(true))]).render()),
                "shutdown",
                true,
            ),
            Err(message) => {
                let err = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::obj(vec![
                            ("kind", Json::str("forbidden")),
                            ("message", Json::str(message)),
                        ]),
                    ),
                ]);
                (403, format!("{}\n", err.render()), "shutdown", false)
            }
        },
        (_, "/query" | "/experiments" | "/stats" | "/shutdown") => {
            let err =
                ApiError::bad_request(format!("method {} not allowed on {}", req.method, req.path));
            (405, format!("{}\n", err.to_json().render()), "error", false)
        }
        _ => {
            let err = ApiError::bad_request(format!("no such endpoint {}", req.path));
            (404, format!("{}\n", err.to_json().render()), "error", false)
        }
    }
}

/// Handles one connection end to end. Returns `true` when the request
/// asked for (and was allowed) shutdown.
fn handle(mut stream: TcpStream, stats: &ServerStats, token: Option<&str>) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let started = Instant::now();
    let peer = stream.peer_addr().ok();
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(message) => {
            let err = ApiError::bad_request(message);
            write_response(&mut stream, 400, &format!("{}\n", err.to_json().render()));
            stats.record("error", started.elapsed(), false);
            return false;
        }
    };
    let (status, mut body, kind, shutdown) = route(&req, peer.as_ref(), token);
    // /stats renders after the request is recorded, so the response
    // counts itself and reflects the freshest store snapshot.
    stats.record(kind, started.elapsed(), status < 400);
    if kind == "stats" && status == 200 {
        body = format!("{}\n", stats.to_json().render());
    }
    write_response(&mut stream, status, &body);
    shutdown
}

/// Runs the server until a `POST /shutdown` arrives: binds, reports the
/// address (stderr + optional `--addr-file`), then serves on a worker
/// pool. Returns after every queued and in-flight request has drained
/// and all workers have joined.
///
/// # Errors
///
/// Propagates bind/address-file I/O errors; per-connection errors are
/// answered with HTTP 400 and never end the server.
pub fn serve(cfg: &ServerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local = listener.local_addr()?;
    if let Some(path) = &cfg.addr_file {
        std::fs::write(path, format!("{local}\n"))?;
    }
    eprintln!(
        "tradeoff-server listening on {local} ({} workers)",
        cfg.threads.max(1)
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..cfg.threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let token = cfg.shutdown_token.clone();
            std::thread::spawn(move || loop {
                // Hold the receiver lock only while dequeuing.
                let next = {
                    let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.recv()
                };
                let Ok(stream) = next else {
                    return; // channel closed and drained: exit
                };
                if handle(stream, &stats, token.as_deref()) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the blocking acceptor with a throwaway
                    // connection so it observes the flag.
                    let _ = TcpStream::connect(local);
                }
            })
        })
        .collect();

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            // A send can only fail after shutdown closed the channel.
            Ok(stream) => {
                let _ = tx.send(stream);
            }
            Err(_) => continue,
        }
    }

    // Close the channel: workers finish whatever is queued, then exit.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    eprintln!("tradeoff-server: drained and stopped");
    Ok(())
}

/// A minimal HTTP/1.1 client call — what `tradeoff-cli query --server`
/// and the integration tests use to talk to the server.
///
/// # Errors
///
/// Returns a message on connection or protocol failure.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let addr: SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad server address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading response: {e}"))?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let dir = std::env::temp_dir().join(format!(
            "tradeoff_server_unit_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let addr_file = dir.join("addr");
        let _ = std::fs::remove_file(&addr_file);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            addr_file: Some(addr_file.clone()),
            shutdown_token: None,
        };
        let handle = std::thread::spawn(move || serve(&cfg).expect("server runs"));
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(addr) = text.trim().parse() {
                    break addr;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        (addr, handle)
    }

    #[test]
    fn shutdown_auth_policy_gates_the_route() {
        let shutdown_req = |body: &str| Request {
            method: "POST".to_string(),
            path: "/shutdown".to_string(),
            body: body.to_string(),
        };
        let local: SocketAddr = "127.0.0.1:50000".parse().unwrap();
        let remote: SocketAddr = "192.0.2.7:50000".parse().unwrap();

        // No token configured: loopback may stop, remote peers may not.
        let (status, _, _, stop) = route(&shutdown_req(""), Some(&local), None);
        assert_eq!((status, stop), (200, true));
        let (status, body, kind, stop) = route(&shutdown_req(""), Some(&remote), None);
        assert_eq!((status, stop), (403, false));
        assert_eq!(kind, "shutdown");
        assert!(body.contains("loopback-only"), "{body}");
        // An unknown peer (socket gone) is treated as remote.
        let (status, _, _, stop) = route(&shutdown_req(""), None, None);
        assert_eq!((status, stop), (403, false));

        // Token configured: required from everyone, loopback included.
        let token = Some("s3cret");
        let (status, body, _, stop) = route(&shutdown_req(""), Some(&local), token);
        assert_eq!((status, stop), (403, false));
        assert!(body.contains("forbidden"), "{body}");
        let (status, _, _, stop) =
            route(&shutdown_req(r#"{"token":"wrong"}"#), Some(&local), token);
        assert_eq!((status, stop), (403, false));
        let (status, _, _, stop) =
            route(&shutdown_req(r#"{"token":"s3cret"}"#), Some(&remote), token);
        assert_eq!((status, stop), (200, true));

        // The guard never leaks into other endpoints.
        let req = Request {
            method: "GET".to_string(),
            path: "/stats".to_string(),
            body: String::new(),
        };
        let (status, _, _, stop) = route(&req, Some(&remote), token);
        assert_eq!((status, stop), (200, false));
    }

    #[test]
    fn serves_queries_stats_and_shuts_down() {
        let (addr, handle) = spawn_server();
        let addr_s = addr.to_string();

        // A query answer comes straight from dispatch.
        let req = r#"{"query": "price", "hr": 0.95}"#;
        let (status, body) = http_call(&addr_s, "POST", "/query", Some(req)).unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with(r#"{"ok":true,"query":"price""#), "{body}");
        assert!(body.ends_with('\n'));

        // Bad requests map to 400 with the typed error JSON.
        let (status, body) = http_call(&addr_s, "POST", "/query", Some("{nope")).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("bad-request"), "{body}");

        // Unknown endpoints and wrong methods are typed errors too.
        let (status, _) = http_call(&addr_s, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_call(&addr_s, "GET", "/query", None).unwrap();
        assert_eq!(status, 405);

        // /experiments is the experiments query verbatim.
        let (status, body) = http_call(&addr_s, "GET", "/experiments", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains(r#""query":"experiments""#), "{body}");
        assert!(body.contains("fig1"), "{body}");

        // /stats carries server latency counters and the store snapshot.
        let (status, body) = http_call(&addr_s, "GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        let stats = Json::parse(body.trim()).expect("stats is valid JSON");
        let server = stats.get("server").expect("server section");
        assert!(server.get("requests").unwrap().as_u64().unwrap() >= 5);
        assert!(server.get("errors").unwrap().as_u64().unwrap() >= 3);
        let store = stats.get("store").expect("store section");
        for key in [
            "trace_hits",
            "trace_misses",
            "hist_misses",
            "coalesced_waits",
            "trace_bytes",
            "poison_recoveries",
        ] {
            assert!(store.get(key).is_some(), "missing store.{key}");
        }

        // Graceful shutdown: the call returns, then serve() drains.
        let (status, body) = http_call(&addr_s, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("true"), "{body}");
        handle.join().expect("server thread joins cleanly");
    }
}
