//! `tradeoff-server`: the long-running HTTP/JSON query service.
//!
//! A std-only HTTP/1.1 server (hand-rolled over [`std::net::TcpListener`]
//! — the workspace's vendored deps are offline stand-ins, so there is no
//! hyper/axum to lean on) that keeps the `bench` trace store warm across
//! requests and answers the typed query API:
//!
//! * `POST /query` — one [`tradeoff::api::QueryRequest`] in, one
//!   response (or typed error) out. The body is byte-identical to what
//!   `tradeoff-cli query --json …` prints for the same request: both are
//!   `dispatch(req, &StoreWorkloads)` plus [`report::Json::render`].
//! * `GET /experiments` — the registry listing, same bytes as a
//!   `{"query":"experiments"}` query.
//! * `GET /stats` — request/latency counters, the overload/deadline/
//!   containment counters, and the full [`bench::tracestore::Stats`]
//!   snapshot.
//! * `POST /shutdown` — graceful stop: the acceptor closes, queued and
//!   in-flight requests drain, workers join, `serve` returns. Guarded:
//!   with `--shutdown-token` set every caller must present the token in
//!   the body (`{"token": …}`); without one, only loopback peers may
//!   stop the server. Refusals are 403 and the server keeps serving.
//!
//! # Overload and failure policy
//!
//! The serving path carries the batch suite's robustness discipline
//! (PR 4) end to end — see `DESIGN.md` §16:
//!
//! * **Admission control.** In-flight connections are capped at
//!   `--max-inflight`; beyond the cap the acceptor sheds with a canned
//!   `503 overloaded` + `Retry-After` without reading the request.
//!   Below the cap, a dispatch-queue watermark (`--queue`) sheds only
//!   *expensive* queries (`simulate`/`grid`); cheap requests (`/stats`,
//!   `/experiments`, analytic queries) are always admitted so the
//!   server stays observable under load.
//! * **Deadlines.** Every request gets a budget (`--request-timeout`,
//!   overridable *downward* per request via `X-Request-Timeout-Ms`)
//!   measured from its first byte. A stuck handler is abandoned by a
//!   watchdog and answered `504 deadline-exceeded`; the worker survives.
//! * **Panic containment.** Dispatch runs under `catch_unwind`: a
//!   panicking query answers `500 internal` and the pool keeps its
//!   size — an invariant `/stats` exposes as `pool.size`/`pool.alive`.
//! * **Keep-alive.** Connections persist (`Connection: keep-alive`)
//!   with an idle deadline (`--idle-timeout`), a per-connection request
//!   cap (`--max-requests`), and slow-loris reaping: a peer trickling
//!   bytes slower than the idle gap is disconnected mid-request.
//! * **Fault injection.** The serve path evaluates `bench::fault` sites
//!   `accept`, `read`, `dispatch` and `write` under the pseudo
//!   experiment id `serve`, so `REPRO_FAULTS=dispatch:serve:panic` (and
//!   friends) exercise every policy above deterministically —
//!   `./ci.sh chaos` is the gate.
//!
//! Requests are handled by a small worker pool; concurrent queries that
//! miss on the same trace-store key block on one extraction (the
//! store's key gates — `sched`'s warm-key discipline generalised to the
//! request path) instead of folding the workload N times. See
//! `DESIGN.md` §14.

use bench::fault::{self, Site};
use bench::queryenv::StoreWorkloads;
use bench::tracestore;
use report::Json;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tradeoff::api::{dispatch, ApiError, QueryRequest};

/// Largest request body the server will read.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest HTTP header block the server will buffer before deciding the
/// peer is not speaking HTTP.
pub const MAX_HEAD_BYTES: usize = 8192;

/// Socket timeout for writes and for the one-shot client.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Blocking-read poll granularity: how often a worker re-checks the
/// idle and request deadlines while waiting for bytes.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration, parsed from `tradeoff-server` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:7878` by default; use port `0` for
    /// an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Dispatch-queue watermark: when more than this many accepted
    /// connections are waiting for a worker, *expensive* queries
    /// (`simulate`/`grid`) are shed with `503 overloaded`. Cheap
    /// requests are always admitted.
    pub queue: usize,
    /// Hard cap on in-flight connections. At the cap the acceptor sheds
    /// new connections with a canned `503` without reading them.
    pub max_inflight: usize,
    /// Per-request deadline, measured from the request's first byte.
    /// Zero disables the budget (the idle gap still applies). Clients
    /// may lower (never raise) it per request via `X-Request-Timeout-Ms`.
    pub request_timeout: Duration,
    /// Keep-alive idle deadline: how long a connection may sit without
    /// sending the next request's first byte, and the largest silent
    /// gap tolerated mid-request (the slow-loris reaper).
    pub idle_timeout: Duration,
    /// Requests served per connection before the server closes it.
    pub max_requests_per_conn: usize,
    /// When set, the actual bound address is written here after bind —
    /// how ephemeral-port callers (tests, scripts) learn the port.
    pub addr_file: Option<std::path::PathBuf>,
    /// `POST /shutdown` authorisation. When set, every shutdown request
    /// (loopback included) must carry `{"token": …}` matching this
    /// value; when unset, only loopback peers may stop the server.
    /// Either way a refused shutdown is a 403, never a stop.
    pub shutdown_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8),
            queue: 64,
            max_inflight: 256,
            request_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 100,
            addr_file: None,
            shutdown_token: None,
        }
    }
}

/// Latency accumulator for one query kind.
#[derive(Debug, Clone, Copy, Default)]
struct KindStats {
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

/// Live queue-depth gauges shared by the acceptor and the workers.
#[derive(Debug, Default)]
struct Gauges {
    /// Accepted connections waiting for a worker.
    queued: AtomicU64,
    /// Accepted connections not yet finished (queued + being served).
    inflight: AtomicU64,
}

/// RAII increment of `Gauges::inflight`, decremented when the
/// connection is fully done — however it ends, including a contained
/// worker panic (the guard travels with the stream through the queue).
#[derive(Debug)]
struct InflightGuard {
    gauges: Arc<Gauges>,
}

impl InflightGuard {
    fn new(gauges: Arc<Gauges>) -> InflightGuard {
        gauges.inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard { gauges }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gauges.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Process-wide request counters backing `GET /stats`.
#[derive(Debug)]
struct ServerStats {
    pool_size: u64,
    workers_alive: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    accepted: AtomicU64,
    keepalive_reuses: AtomicU64,
    idle_closes: AtomicU64,
    reaped: AtomicU64,
    sheds_accept: AtomicU64,
    sheds_dispatch: AtomicU64,
    deadline_timeouts: AtomicU64,
    panics_contained: AtomicU64,
    write_failures_2xx: AtomicU64,
    write_failures_4xx: AtomicU64,
    write_failures_5xx: AtomicU64,
    by_kind: Mutex<BTreeMap<String, KindStats>>,
}

impl ServerStats {
    fn new(pool_size: usize) -> ServerStats {
        ServerStats {
            pool_size: pool_size as u64,
            workers_alive: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            idle_closes: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            sheds_accept: AtomicU64::new(0),
            sheds_dispatch: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            write_failures_2xx: AtomicU64::new(0),
            write_failures_4xx: AtomicU64::new(0),
            write_failures_5xx: AtomicU64::new(0),
            by_kind: Mutex::new(BTreeMap::new()),
        }
    }

    fn record(&self, kind: &str, elapsed: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut map = self
            .by_kind
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let e = map.entry(kind.to_string()).or_default();
        e.count += 1;
        e.total_micros += micros;
        e.max_micros = e.max_micros.max(micros);
    }

    /// A response the worker could not (fully) write: counted by status
    /// class instead of dropped on the floor.
    fn record_write_failure(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.write_failures_2xx,
            400..=499 => &self.write_failures_4xx,
            _ => &self.write_failures_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The `/stats` document: server request/latency counters, the
    /// overload/deadline/containment counters, and the trace store's
    /// full observability snapshot.
    fn to_json(&self, gauges: &Gauges) -> Json {
        let n = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed) as f64);
        let map = self
            .by_kind
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let queries = map
            .iter()
            .map(|(kind, s)| {
                (
                    kind.clone(),
                    Json::obj(vec![
                        ("count", Json::num(s.count as f64)),
                        ("total_micros", Json::num(s.total_micros as f64)),
                        ("max_micros", Json::num(s.max_micros as f64)),
                        (
                            "mean_micros",
                            Json::num(
                                s.total_micros.checked_div(s.count).unwrap_or_default() as f64
                            ),
                        ),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        drop(map);
        let st = tracestore::stats();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "server",
                Json::obj(vec![
                    ("requests", n(&self.requests)),
                    ("errors", n(&self.errors)),
                    (
                        "pool",
                        Json::obj(vec![
                            ("size", Json::num(self.pool_size as f64)),
                            ("alive", n(&self.workers_alive)),
                        ]),
                    ),
                    (
                        "connections",
                        Json::obj(vec![
                            ("accepted", n(&self.accepted)),
                            ("keepalive_reuses", n(&self.keepalive_reuses)),
                            ("idle_closes", n(&self.idle_closes)),
                            ("reaped", n(&self.reaped)),
                            ("queued", n(&gauges.queued)),
                            ("inflight", n(&gauges.inflight)),
                        ]),
                    ),
                    (
                        "overload",
                        Json::obj(vec![
                            ("sheds_accept", n(&self.sheds_accept)),
                            ("sheds_dispatch", n(&self.sheds_dispatch)),
                        ]),
                    ),
                    ("deadline_timeouts", n(&self.deadline_timeouts)),
                    ("panics_contained", n(&self.panics_contained)),
                    (
                        "write_failures",
                        Json::obj(vec![
                            ("2xx", n(&self.write_failures_2xx)),
                            ("4xx", n(&self.write_failures_4xx)),
                            ("5xx", n(&self.write_failures_5xx)),
                        ]),
                    ),
                    ("queries", Json::Obj(queries)),
                ]),
            ),
            (
                "store",
                Json::obj(vec![
                    ("trace_hits", Json::num(st.counts.trace_hits as f64)),
                    ("trace_misses", Json::num(st.counts.trace_misses as f64)),
                    ("timeline_hits", Json::num(st.counts.timeline_hits as f64)),
                    (
                        "timeline_misses",
                        Json::num(st.counts.timeline_misses as f64),
                    ),
                    ("hist_hits", Json::num(st.counts.hist_hits as f64)),
                    ("hist_misses", Json::num(st.counts.hist_misses as f64)),
                    ("trace_evictions", Json::num(st.trace_evictions as f64)),
                    ("hist_evictions", Json::num(st.hist_evictions as f64)),
                    ("coalesced_waits", Json::num(st.coalesced_waits as f64)),
                    ("trace_bytes", Json::num(st.trace_bytes as f64)),
                    ("hist_bytes", Json::num(st.hist_bytes as f64)),
                    ("poison_recoveries", Json::num(st.poison_recoveries as f64)),
                ]),
            ),
        ])
    }
}

/// One parsed request head: everything above the body, as the server
/// understands it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method (`GET`, `POST`, …) verbatim.
    pub method: String,
    /// Request path verbatim.
    pub path: String,
    /// Declared body length (absent `Content-Length` means `0`).
    pub content_length: usize,
    /// Whether the connection persists after the response: HTTP/1.1
    /// defaults to `true`, HTTP/1.0 to `false`, and a `Connection`
    /// header overrides either way.
    pub keep_alive: bool,
    /// `X-Request-Timeout-Ms`: the client's *downward* override of the
    /// server's request budget.
    pub timeout_ms: Option<u64>,
}

/// Parses one HTTP request head from the front of `buf`.
///
/// Returns `Ok(None)` when the header block is not yet complete (the
/// caller should read more bytes), or `Ok(Some((head, consumed)))`
/// where `consumed` is the offset of the first body byte.
///
/// # Errors
///
/// A message for malformed input — a bad request line, a header line
/// without `:`, an unparsable or conflicting `Content-Length`, a bad
/// `X-Request-Timeout-Ms`, a body beyond [`MAX_BODY_BYTES`], or a
/// header block beyond [`MAX_HEAD_BYTES`]. All map to `400`.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Head, usize)>, String> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(format!("header block exceeds {MAX_HEAD_BYTES} bytes"));
        }
        return Ok(None);
    };
    let consumed = head_end + 4;
    if consumed > MAX_HEAD_BYTES {
        return Err(format!("header block exceeds {MAX_HEAD_BYTES} bytes"));
    }
    let text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "header block is not UTF-8".to_string())?;
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".to_string());
    }
    let mut head = Head {
        method,
        path,
        content_length: 0,
        keep_alive: version != "HTTP/1.0",
        timeout_ms: None,
    };
    let mut seen_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("header line without a colon: {line:?}"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let length: usize = value
                .parse()
                .map_err(|_| "bad Content-Length".to_string())?;
            if seen_length.is_some_and(|prev| prev != length) {
                return Err("conflicting Content-Length headers".to_string());
            }
            seen_length = Some(length);
            head.content_length = length;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                head.keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                head.keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("x-request-timeout-ms") {
            head.timeout_ms = Some(
                value
                    .parse()
                    .map_err(|_| "bad X-Request-Timeout-Ms".to_string())?,
            );
        }
    }
    if head.content_length > MAX_BODY_BYTES {
        return Err(format!("body exceeds {MAX_BODY_BYTES} bytes"));
    }
    Ok(Some((head, consumed)))
}

/// One parsed HTTP request (head folded down to what routing needs).
struct Request {
    method: String,
    path: String,
    body: String,
}

/// How one attempt to receive a request off a connection ended.
enum Recv {
    /// A complete request; `started` is when its first byte arrived.
    Request {
        head: Head,
        body: String,
        started: Instant,
    },
    /// No request started within the idle deadline: clean close.
    IdleClosed,
    /// The peer closed cleanly between requests.
    Eof,
    /// Mid-request deadline blown (request budget, or a silent gap
    /// beyond the idle timeout — the slow-loris case): close without a
    /// response.
    Reaped,
    /// The peer vanished or an injected read fault cut it off.
    Disconnected,
    /// Unparsable bytes: answer 400 and close.
    Malformed(String),
}

/// Receives one request, honouring the idle deadline (before the first
/// byte and between reads) and the request budget (from the first
/// byte). `carry` holds bytes pipelined past the previous request and
/// persists across calls on a keep-alive connection. The `read` fault
/// site fires when a request's first byte arrives off the socket.
fn recv_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    idle: Duration,
    budget: Option<Duration>,
) -> Recv {
    let opened = Instant::now();
    let mut started: Option<Instant> = (!carry.is_empty()).then_some(opened);
    let mut last_byte = opened;
    let mut head: Option<(Head, usize)> = None;
    loop {
        if head.is_none() && !carry.is_empty() {
            match parse_head(carry) {
                Err(message) => return Recv::Malformed(message),
                Ok(Some(parsed)) => head = Some(parsed),
                Ok(None) => {}
            }
        }
        if let Some((h, consumed)) = head.take() {
            let total = consumed + h.content_length;
            if carry.len() >= total {
                let body_bytes: Vec<u8> = carry.drain(..total).skip(consumed).collect();
                let Ok(body) = String::from_utf8(body_bytes) else {
                    return Recv::Malformed("body is not UTF-8".to_string());
                };
                return Recv::Request {
                    head: h,
                    body,
                    started: started.unwrap_or(opened),
                };
            }
            head = Some((h, consumed));
        }
        let now = Instant::now();
        match started {
            Some(first) => {
                let budget_blown = budget.is_some_and(|b| now.duration_since(first) >= b);
                if budget_blown || now.duration_since(last_byte) >= idle {
                    return Recv::Reaped;
                }
            }
            None => {
                if now.duration_since(opened) >= idle {
                    return Recv::IdleClosed;
                }
            }
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if started.is_none() && carry.is_empty() {
                    Recv::Eof
                } else {
                    Recv::Disconnected
                };
            }
            Ok(n) => {
                let first_byte = started.is_none();
                carry.extend_from_slice(&chunk[..n]);
                last_byte = Instant::now();
                if first_byte {
                    started = Some(last_byte);
                    // The serve-path slow-read / cut-read fault site: a
                    // delay consumes the request budget (ending in 504
                    // or a reap), an io fault models a mid-body
                    // disconnect.
                    if fault::check(Site::Read).is_err() {
                        return Recv::Disconnected;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return Recv::Disconnected,
        }
    }
}

/// The request's remaining deadline at a decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deadline {
    /// No budget configured and none requested.
    Unbounded,
    /// This much budget left.
    Within(Duration),
    /// The budget is already gone: answer 504 without dispatching.
    Expired,
}

/// Combines the server budget with the client's header override —
/// downward only: the header can shorten the budget, never extend it.
fn effective_budget(server: Duration, header_ms: Option<u64>) -> Option<Duration> {
    let server = (!server.is_zero()).then_some(server);
    let header = header_ms.map(Duration::from_millis);
    match (server, header) {
        (Some(s), Some(h)) => Some(s.min(h)),
        (Some(s), None) => Some(s),
        (None, h) => h,
    }
}

/// Expensive queries — the ones load shedding refuses under a dispatch
/// backlog. Everything else (analytic closed forms, listings) is cheap
/// enough to always admit.
fn expensive(req: &QueryRequest) -> bool {
    matches!(req, QueryRequest::Simulate(_) | QueryRequest::Grid(_))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Renders a wire error body in the API's shape:
/// `{"ok":false,"error":{"kind":…,"message":…}}`.
fn wire_error(kind: &str, message: &str) -> String {
    let err = Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::str(kind)),
                ("message", Json::str(message)),
            ]),
        ),
    ]);
    format!("{}\n", err.render())
}

/// Writes one HTTP/1.1 response. Returns `false` when the write failed
/// (the connection is dead and must be dropped); failures are counted
/// per status class instead of silently swallowed. The `write` fault
/// site (experiment id `serve`) injects exactly such failures.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
    stats: &ServerStats,
) -> bool {
    let retry = retry_after
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let msg = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    );
    let wrote = fault::check(Site::Write)
        .and_then(|()| stream.write_all(msg.as_bytes()))
        .and_then(|()| stream.flush());
    match wrote {
        Ok(()) => true,
        Err(_) => {
            stats.record_write_failure(status);
            false
        }
    }
}

/// Checks a `POST /shutdown` against the auth policy. With a configured
/// token, *every* caller — loopback included — must present it in the
/// body as `{"token": …}`, which keeps the refusal path testable end to
/// end. Without one, only loopback peers may stop the server, so a
/// `--addr 0.0.0.0` deployment is not stoppable by any host that can
/// reach the port.
fn shutdown_allowed(
    body: &str,
    peer: Option<&SocketAddr>,
    token: Option<&str>,
) -> Result<(), String> {
    match token {
        Some(expected) => {
            let presented = Json::parse(body.trim())
                .ok()
                .and_then(|j| j.get("token").and_then(Json::as_str).map(str::to_string));
            if presented.as_deref() == Some(expected) {
                Ok(())
            } else {
                Err("shutdown requires the configured token".to_string())
            }
        }
        None => {
            if peer.is_some_and(|p| p.ip().is_loopback()) {
                Ok(())
            } else {
                Err("shutdown without a configured --shutdown-token is loopback-only".to_string())
            }
        }
    }
}

/// One routed response, ready to write.
struct Outcome {
    status: u16,
    body: String,
    /// Which `/stats` latency bucket the request lands in.
    kind: &'static str,
    /// The request asked for (and was allowed) shutdown.
    shutdown: bool,
    /// `Retry-After` seconds, set on shed responses.
    retry_after: Option<u64>,
}

impl Outcome {
    fn plain(status: u16, body: String, kind: &'static str) -> Outcome {
        Outcome {
            status,
            body,
            kind,
            shutdown: false,
            retry_after: None,
        }
    }
}

/// Downcasts a panic payload to something printable.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-text panic payload".to_string()
    }
}

/// Runs `dispatch` with PR 4's containment discipline: on a spawned
/// watchdog thread (`recv_timeout` abandons a stuck handler and answers
/// `504 deadline-exceeded`) and under `catch_unwind` (a panicking query
/// answers `500 internal`; the pool keeps its size). The `dispatch`
/// fault site fires inside the guarded region.
fn dispatch_guarded(req: QueryRequest, deadline: Deadline, stats: &ServerStats) -> (u16, String) {
    let answer = |r: Result<tradeoff::api::QueryResponse, ApiError>| match r {
        Ok(resp) => (200, format!("{}\n", resp.to_json_string())),
        Err(err) => (
            err.kind.http_status(),
            format!("{}\n", err.to_json().render()),
        ),
    };
    let limit = match deadline {
        Deadline::Unbounded => None,
        Deadline::Within(remaining) => Some(remaining),
        Deadline::Expired => unreachable!("expired deadlines are answered before dispatch"),
    };
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("tradeoff-serve-dispatch".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _scope = fault::enter("serve");
                fault::check(Site::Dispatch)
                    .map_err(|e| ApiError::internal(format!("injected dispatch fault: {e}")))
                    .and_then(|()| dispatch(&req, &StoreWorkloads))
            }));
            // The watchdog may have given up on us: a dead receiver is
            // fine, the answer is simply discarded.
            let _ = tx.send(result);
        });
    if spawned.is_err() {
        return answer(Err(ApiError::internal("spawning the dispatch watchdog")));
    }
    let received = match limit {
        Some(limit) => rx.recv_timeout(limit).map_err(|_| ()),
        None => rx.recv().map_err(|_| ()),
    };
    match received {
        Ok(Ok(result)) => answer(result),
        Ok(Err(payload)) => {
            // The handler panicked; the worker survives it.
            stats.panics_contained.fetch_add(1, Ordering::Relaxed);
            answer(Err(ApiError::internal(format!(
                "query handler panicked: {}",
                panic_text(payload.as_ref())
            ))))
        }
        Err(()) => {
            // Deadline blown (or the dispatch thread died without
            // answering): abandon it, the worker moves on.
            stats.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
            (
                504,
                wire_error(
                    "deadline-exceeded",
                    "request deadline expired during dispatch",
                ),
            )
        }
    }
}

/// Routes one request under the overload and deadline policy.
fn route(
    req: &Request,
    peer: Option<&SocketAddr>,
    token: Option<&str>,
    overloaded: bool,
    deadline: Deadline,
    stats: &ServerStats,
) -> Outcome {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => {
            let query = match QueryRequest::from_json_str(&req.body) {
                Ok(query) => query,
                Err(err) => {
                    return Outcome::plain(
                        err.kind.http_status(),
                        format!("{}\n", err.to_json().render()),
                        "query",
                    )
                }
            };
            if overloaded && expensive(&query) {
                stats.sheds_dispatch.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    status: 503,
                    body: wire_error(
                        "overloaded",
                        "dispatch queue over its watermark; retry after backoff",
                    ),
                    kind: "shed",
                    shutdown: false,
                    retry_after: Some(1),
                };
            }
            if deadline == Deadline::Expired {
                stats.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                return Outcome::plain(
                    504,
                    wire_error(
                        "deadline-exceeded",
                        "request deadline expired before dispatch",
                    ),
                    "query",
                );
            }
            let (status, body) = dispatch_guarded(query, deadline, stats);
            Outcome::plain(status, body, "query")
        }
        ("GET", "/experiments") => {
            if deadline == Deadline::Expired {
                stats.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                return Outcome::plain(
                    504,
                    wire_error(
                        "deadline-exceeded",
                        "request deadline expired before dispatch",
                    ),
                    "experiments",
                );
            }
            let (status, body) = dispatch_guarded(QueryRequest::Experiments, deadline, stats);
            Outcome::plain(status, body, "experiments")
        }
        // Body filled by the caller so the response counts itself.
        ("GET", "/stats") => Outcome::plain(200, String::new(), "stats"),
        ("POST", "/shutdown") => match shutdown_allowed(&req.body, peer, token) {
            Ok(()) => Outcome {
                status: 200,
                body: format!("{}\n", Json::obj(vec![("ok", Json::Bool(true))]).render()),
                kind: "shutdown",
                shutdown: true,
                retry_after: None,
            },
            Err(message) => Outcome::plain(403, wire_error("forbidden", &message), "shutdown"),
        },
        (_, "/query" | "/experiments" | "/stats" | "/shutdown") => {
            let err =
                ApiError::bad_request(format!("method {} not allowed on {}", req.method, req.path));
            Outcome::plain(405, format!("{}\n", err.to_json().render()), "error")
        }
        _ => {
            let err = ApiError::bad_request(format!("no such endpoint {}", req.path));
            Outcome::plain(404, format!("{}\n", err.to_json().render()), "error")
        }
    }
}

/// Serves one connection until it closes: the keep-alive loop. Returns
/// `true` when a request asked for (and was allowed) shutdown.
fn handle_connection(
    mut stream: TcpStream,
    cfg: &ServerConfig,
    stats: &ServerStats,
    gauges: &Gauges,
    shutdown: &AtomicBool,
) -> bool {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let peer = stream.peer_addr().ok();
    let mut carry = Vec::new();
    let mut served = 0usize;
    let read_budget = (!cfg.request_timeout.is_zero()).then_some(cfg.request_timeout);
    loop {
        match recv_request(&mut stream, &mut carry, cfg.idle_timeout, read_budget) {
            Recv::IdleClosed => {
                stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Recv::Eof | Recv::Disconnected => return false,
            Recv::Reaped => {
                stats.reaped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Recv::Malformed(message) => {
                let err = ApiError::bad_request(message);
                let body = format!("{}\n", err.to_json().render());
                respond(&mut stream, 400, &body, false, None, stats);
                stats.record("error", Duration::ZERO, false);
                return false;
            }
            Recv::Request {
                head,
                body,
                started,
            } => {
                served += 1;
                if served > 1 {
                    stats.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                }
                let req = Request {
                    method: head.method.clone(),
                    path: head.path.clone(),
                    body,
                };
                let deadline = match effective_budget(cfg.request_timeout, head.timeout_ms) {
                    None => Deadline::Unbounded,
                    Some(budget) => match budget.checked_sub(started.elapsed()) {
                        Some(remaining) if !remaining.is_zero() => Deadline::Within(remaining),
                        _ => Deadline::Expired,
                    },
                };
                let overloaded = gauges.queued.load(Ordering::SeqCst) > cfg.queue as u64;
                let mut out = route(
                    &req,
                    peer.as_ref(),
                    cfg.shutdown_token.as_deref(),
                    overloaded,
                    deadline,
                    stats,
                );
                // /stats renders after the request is recorded, so the
                // response counts itself and reflects the freshest
                // store snapshot.
                stats.record(out.kind, started.elapsed(), out.status < 400);
                if out.kind == "stats" && out.status == 200 {
                    out.body = format!("{}\n", stats.to_json(gauges).render());
                }
                // Persist only while the server is healthy: a backlog
                // or a pending shutdown frees the worker instead.
                let keep = head.keep_alive
                    && !out.shutdown
                    && served < cfg.max_requests_per_conn.max(1)
                    && gauges.queued.load(Ordering::Relaxed) == 0
                    && !shutdown.load(Ordering::SeqCst);
                let wrote = respond(
                    &mut stream,
                    out.status,
                    &out.body,
                    keep,
                    out.retry_after,
                    stats,
                );
                if out.shutdown {
                    return true;
                }
                if !keep || !wrote {
                    return false;
                }
            }
        }
    }
}

/// Runs the server until a `POST /shutdown` arrives: binds, reports the
/// address (stderr + optional `--addr-file`), then serves on a worker
/// pool under the overload policy described in the module docs. Returns
/// after every queued and in-flight request has drained and all workers
/// have joined.
///
/// # Errors
///
/// Propagates bind/address-file I/O errors; per-connection errors are
/// answered with typed HTTP errors and never end the server.
pub fn serve(cfg: &ServerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local = listener.local_addr()?;
    if let Some(path) = &cfg.addr_file {
        std::fs::write(path, format!("{local}\n"))?;
    }
    let threads = cfg.threads.max(1);
    eprintln!("tradeoff-server listening on {local} ({threads} workers)");

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::new(threads));
    let gauges = Arc::new(Gauges::default());
    // Capacity max_inflight: the acceptor sheds at that many in-flight
    // connections, so a send can never block.
    let (tx, rx) = mpsc::sync_channel::<(TcpStream, InflightGuard)>(cfg.max_inflight.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let stats = Arc::clone(&stats);
            let gauges = Arc::clone(&gauges);
            let shutdown = Arc::clone(&shutdown);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                // Serve-path faults target the pseudo experiment `serve`.
                let _scope = fault::enter("serve");
                stats.workers_alive.fetch_add(1, Ordering::SeqCst);
                loop {
                    // Hold the receiver lock only while dequeuing.
                    let next = {
                        let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard.recv()
                    };
                    let Ok((stream, inflight)) = next else {
                        break; // channel closed and drained: exit
                    };
                    gauges.queued.fetch_sub(1, Ordering::SeqCst);
                    // The last line of containment: nothing that
                    // unwinds out of a connection may shrink the pool.
                    let stop = catch_unwind(AssertUnwindSafe(|| {
                        handle_connection(stream, &cfg, &stats, &gauges, &shutdown)
                    }))
                    .unwrap_or(false);
                    drop(inflight);
                    if stop {
                        shutdown.store(true, Ordering::SeqCst);
                        // Wake the blocking acceptor with a throwaway
                        // connection so it observes the flag.
                        let _ = TcpStream::connect(local);
                    }
                }
                stats.workers_alive.fetch_sub(1, Ordering::SeqCst);
            })
        })
        .collect();

    // The acceptor evaluates the `accept` fault site under `serve` too.
    let accept_scope = fault::enter("serve");
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        let at_cap = gauges.inflight.load(Ordering::SeqCst) >= cfg.max_inflight.max(1) as u64;
        // An injected accept fault forces the shed path deterministically.
        if at_cap || fault::check(Site::Accept).is_err() {
            stats.sheds_accept.fetch_add(1, Ordering::Relaxed);
            stats.record("shed", Duration::ZERO, false);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let body = wire_error("overloaded", "server at max in-flight connections");
            respond(&mut stream, 503, &body, false, Some(1), &stats);
            continue;
        }
        let inflight = InflightGuard::new(Arc::clone(&gauges));
        gauges.queued.fetch_add(1, Ordering::SeqCst);
        if tx.send((stream, inflight)).is_err() {
            break; // only possible once shutdown closed the channel
        }
    }
    drop(accept_scope);

    // Close the channel: workers finish whatever is queued, then exit.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    eprintln!("tradeoff-server: drained and stopped");
    Ok(())
}

/// One parsed HTTP response from the server.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds, present on shed (`503`) responses.
    pub retry_after: Option<u64>,
    /// Response body.
    pub body: String,
}

/// Reads one HTTP response (status line, `Content-Length`-framed body)
/// from `stream`, carrying pipelined leftovers in `carry`.
fn read_reply(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<HttpReply, String> {
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-response".to_string()),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("reading response: {e}")),
        }
    };
    let consumed = head_end + 4;
    let text = std::str::from_utf8(&carry[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let status: u16 = lines
        .next()
        .unwrap_or_default()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| "bad response Content-Length".to_string())?;
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.trim().parse().ok();
        }
    }
    let total = consumed + content_length;
    while carry.len() < total {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".to_string()),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("reading response body: {e}")),
        }
    }
    let body_bytes: Vec<u8> = carry.drain(..total).skip(consumed).collect();
    let body =
        String::from_utf8(body_bytes).map_err(|_| "response body is not UTF-8".to_string())?;
    Ok(HttpReply {
        status,
        retry_after,
        body,
    })
}

/// A one-shot HTTP/1.1 client call (`Connection: close`), returning the
/// full reply including any `Retry-After` — what the CLI's retrying
/// `--server` mode is built on.
///
/// # Errors
///
/// Returns a message on connection or protocol failure.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, String> {
    let addr: SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad server address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    read_reply(&mut stream, &mut Vec::new())
}

/// A minimal HTTP/1.1 client call — what `tradeoff-cli query --server`
/// and the integration tests use to talk to the server.
///
/// # Errors
///
/// Returns a message on connection or protocol failure.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    http_request(addr, method, path, body).map(|reply| (reply.status, reply.body))
}

/// A persistent (keep-alive) HTTP/1.1 client connection: many calls,
/// one TCP stream. Used by the keep-alive tests and `benches/serve.rs`
/// to measure reuse against connection-per-request.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
    addr: SocketAddr,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns a message when the address is bad or unreachable.
    pub fn connect(addr: &str) -> Result<HttpClient, String> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| format!("bad server address {addr:?}: {e}"))?;
        let stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
            .map_err(|e| format!("connecting to {addr}: {e}"))?;
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        Ok(HttpClient {
            stream,
            carry: Vec::new(),
            addr,
        })
    }

    /// Sends one request on the persistent connection and reads its
    /// reply.
    ///
    /// # Errors
    ///
    /// Returns a message on connection or protocol failure (including
    /// the server closing the connection, e.g. at its per-connection
    /// request cap — reconnect and retry in that case).
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, String> {
        self.call_with_headers(method, path, body, "")
    }

    /// [`HttpClient::call`] with extra raw header lines (each ending in
    /// `\r\n`) — how tests exercise `X-Request-Timeout-Ms` and friends.
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::call`].
    pub fn call_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &str,
    ) -> Result<HttpReply, String> {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra_headers}Connection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        self.stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("sending request: {e}"))?;
        read_reply(&mut self.stream, &mut self.carry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let dir = std::env::temp_dir().join(format!(
            "tradeoff_server_unit_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let addr_file = dir.join("addr");
        let _ = std::fs::remove_file(&addr_file);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            addr_file: Some(addr_file.clone()),
            ..ServerConfig::default()
        };
        let handle = std::thread::spawn(move || serve(&cfg).expect("server runs"));
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(addr) = text.trim().parse() {
                    break addr;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        (addr, handle)
    }

    #[test]
    fn parse_head_handles_the_http_it_will_meet() {
        // A bare GET: complete head, no body, HTTP/1.1 keeps alive.
        let (head, consumed) = parse_head(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            (head.method.as_str(), head.path.as_str()),
            ("GET", "/stats")
        );
        assert_eq!((head.content_length, head.keep_alive), (0, true));
        assert_eq!(consumed, 32);

        // POST with a body and explicit close.
        let buf = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody";
        let (head, consumed) = parse_head(buf).unwrap().unwrap();
        assert_eq!((head.content_length, head.keep_alive), (4, false));
        assert_eq!(&buf[consumed..], b"body");

        // HTTP/1.0 defaults to close; keep-alive opts back in.
        let (head, _) = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!head.keep_alive);
        let (head, _) = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(head.keep_alive);

        // The deadline override header parses.
        let (head, _) = parse_head(b"GET / HTTP/1.1\r\nX-Request-Timeout-Ms: 250\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(head.timeout_ms, Some(250));

        // Incomplete heads ask for more bytes.
        assert_eq!(parse_head(b"GET /stats HTTP/1.1\r\nHost:").unwrap(), None);
        assert_eq!(parse_head(b"").unwrap(), None);

        // Malformed input is a typed refusal, never a panic.
        assert!(parse_head(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_head(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        assert!(
            parse_head(b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n")
                .is_err(),
            "conflicting lengths"
        );
        let oversized = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse_head(oversized.as_bytes()).is_err(), "oversized body");
        let endless = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(parse_head(&endless).is_err(), "oversized head");
    }

    #[test]
    fn deadlines_compose_downward_only() {
        let ten = Duration::from_secs(10);
        assert_eq!(effective_budget(ten, None), Some(ten));
        // The header can shorten…
        assert_eq!(
            effective_budget(ten, Some(250)),
            Some(Duration::from_millis(250))
        );
        // …but never extend.
        assert_eq!(effective_budget(ten, Some(60_000)), Some(ten));
        // A zero server budget disables it; the header may still bound.
        assert_eq!(effective_budget(Duration::ZERO, None), None);
        assert_eq!(
            effective_budget(Duration::ZERO, Some(100)),
            Some(Duration::from_millis(100))
        );
    }

    #[test]
    fn only_simulation_backed_queries_are_expensive() {
        let cheap = QueryRequest::from_json_str(r#"{"query":"price","hr":0.95}"#).unwrap();
        assert!(!expensive(&cheap));
        assert!(!expensive(&QueryRequest::Experiments));
        let sim = QueryRequest::from_json_str(
            r#"{"query":"simulate","program":"ear","instructions":1000}"#,
        )
        .unwrap();
        assert!(expensive(&sim));
    }

    #[test]
    fn overload_sheds_expensive_queries_but_admits_cheap_ones() {
        let stats = ServerStats::new(2);
        let cheap = Request {
            method: "POST".to_string(),
            path: "/query".to_string(),
            body: r#"{"query":"price","hr":0.95}"#.to_string(),
        };
        let out = route(&cheap, None, None, true, Deadline::Unbounded, &stats);
        assert_eq!(out.status, 200, "cheap queries ride through overload");

        let sim = Request {
            method: "POST".to_string(),
            path: "/query".to_string(),
            body: r#"{"query":"simulate","program":"ear","instructions":1000}"#.to_string(),
        };
        let out = route(&sim, None, None, true, Deadline::Unbounded, &stats);
        assert_eq!(out.status, 503);
        assert_eq!(out.retry_after, Some(1), "sheds carry Retry-After");
        assert!(out.body.contains("overloaded"), "{}", out.body);
        assert_eq!(stats.sheds_dispatch.load(Ordering::Relaxed), 1);

        // Unloaded, the same expensive query dispatches.
        let out = route(&sim, None, None, false, Deadline::Unbounded, &stats);
        assert_eq!(out.status, 200, "{}", out.body);
    }

    #[test]
    fn expired_deadlines_answer_504_without_dispatching() {
        let stats = ServerStats::new(2);
        let req = Request {
            method: "POST".to_string(),
            path: "/query".to_string(),
            body: r#"{"query":"price","hr":0.95}"#.to_string(),
        };
        let out = route(&req, None, None, false, Deadline::Expired, &stats);
        assert_eq!(out.status, 504);
        assert!(out.body.contains("deadline-exceeded"), "{}", out.body);
        assert_eq!(stats.deadline_timeouts.load(Ordering::Relaxed), 1);

        // /stats ignores the deadline: observability never times out.
        let req = Request {
            method: "GET".to_string(),
            path: "/stats".to_string(),
            body: String::new(),
        };
        let out = route(&req, None, None, false, Deadline::Expired, &stats);
        assert_eq!(out.status, 200);
    }

    #[test]
    fn shutdown_auth_policy_gates_the_route() {
        let stats = ServerStats::new(2);
        let shutdown_req = |body: &str| Request {
            method: "POST".to_string(),
            path: "/shutdown".to_string(),
            body: body.to_string(),
        };
        let route_plain = |req: &Request, peer: Option<&SocketAddr>, token: Option<&str>| {
            route(req, peer, token, false, Deadline::Unbounded, &stats)
        };
        let local: SocketAddr = "127.0.0.1:50000".parse().unwrap();
        let remote: SocketAddr = "192.0.2.7:50000".parse().unwrap();

        // No token configured: loopback may stop, remote peers may not.
        let out = route_plain(&shutdown_req(""), Some(&local), None);
        assert_eq!((out.status, out.shutdown), (200, true));
        let out = route_plain(&shutdown_req(""), Some(&remote), None);
        assert_eq!((out.status, out.shutdown), (403, false));
        assert_eq!(out.kind, "shutdown");
        assert!(out.body.contains("loopback-only"), "{}", out.body);
        // An unknown peer (socket gone) is treated as remote.
        let out = route_plain(&shutdown_req(""), None, None);
        assert_eq!((out.status, out.shutdown), (403, false));

        // Token configured: required from everyone, loopback included.
        let token = Some("s3cret");
        let out = route_plain(&shutdown_req(""), Some(&local), token);
        assert_eq!((out.status, out.shutdown), (403, false));
        assert!(out.body.contains("forbidden"), "{}", out.body);
        let out = route_plain(&shutdown_req(r#"{"token":"wrong"}"#), Some(&local), token);
        assert_eq!((out.status, out.shutdown), (403, false));
        let out = route_plain(&shutdown_req(r#"{"token":"s3cret"}"#), Some(&remote), token);
        assert_eq!((out.status, out.shutdown), (200, true));

        // The guard never leaks into other endpoints.
        let req = Request {
            method: "GET".to_string(),
            path: "/stats".to_string(),
            body: String::new(),
        };
        let out = route_plain(&req, Some(&remote), token);
        assert_eq!((out.status, out.shutdown), (200, false));
    }

    #[test]
    fn serves_queries_stats_and_shuts_down() {
        let (addr, handle) = spawn_server();
        let addr_s = addr.to_string();

        // A query answer comes straight from dispatch.
        let req = r#"{"query": "price", "hr": 0.95}"#;
        let (status, body) = http_call(&addr_s, "POST", "/query", Some(req)).unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with(r#"{"ok":true,"query":"price""#), "{body}");
        assert!(body.ends_with('\n'));

        // Bad requests map to 400 with the typed error JSON.
        let (status, body) = http_call(&addr_s, "POST", "/query", Some("{nope")).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("bad-request"), "{body}");

        // Unknown endpoints and wrong methods are typed errors too.
        let (status, _) = http_call(&addr_s, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_call(&addr_s, "GET", "/query", None).unwrap();
        assert_eq!(status, 405);

        // /experiments is the experiments query verbatim.
        let (status, body) = http_call(&addr_s, "GET", "/experiments", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains(r#""query":"experiments""#), "{body}");
        assert!(body.contains("fig1"), "{body}");

        // /stats carries server latency counters, the robustness
        // counters, and the store snapshot.
        let (status, body) = http_call(&addr_s, "GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        let stats = Json::parse(body.trim()).expect("stats is valid JSON");
        let server = stats.get("server").expect("server section");
        assert!(server.get("requests").unwrap().as_u64().unwrap() >= 5);
        assert!(server.get("errors").unwrap().as_u64().unwrap() >= 3);
        let pool = server.get("pool").expect("pool section");
        assert_eq!(pool.get("size").unwrap().as_u64(), Some(2));
        assert_eq!(
            pool.get("alive").unwrap().as_u64(),
            Some(2),
            "the pool invariant: alive == size while serving"
        );
        let overload = server.get("overload").expect("overload section");
        assert_eq!(overload.get("sheds_accept").unwrap().as_u64(), Some(0));
        assert_eq!(server.get("panics_contained").unwrap().as_u64(), Some(0));
        assert_eq!(server.get("deadline_timeouts").unwrap().as_u64(), Some(0));
        let conns = server.get("connections").expect("connections section");
        assert!(conns.get("accepted").unwrap().as_u64().unwrap() >= 5);
        let wf = server.get("write_failures").expect("write_failures");
        assert_eq!(wf.get("5xx").unwrap().as_u64(), Some(0));
        let store = stats.get("store").expect("store section");
        for key in [
            "trace_hits",
            "trace_misses",
            "hist_misses",
            "coalesced_waits",
            "trace_bytes",
            "poison_recoveries",
        ] {
            assert!(store.get(key).is_some(), "missing store.{key}");
        }

        // Graceful shutdown: the call returns, then serve() drains.
        let (status, body) = http_call(&addr_s, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("true"), "{body}");
        handle.join().expect("server thread joins cleanly");
    }

    #[test]
    fn keepalive_connections_serve_many_requests_on_one_stream() {
        let (addr, handle) = spawn_server();
        let addr_s = addr.to_string();

        let mut client = HttpClient::connect(&addr_s).unwrap();
        let first = client
            .call("POST", "/query", Some(r#"{"query":"price","hr":0.95}"#))
            .unwrap();
        assert_eq!(first.status, 200);
        for _ in 0..3 {
            let again = client
                .call("POST", "/query", Some(r#"{"query":"price","hr":0.95}"#))
                .unwrap();
            assert_eq!(again.body, first.body, "keep-alive answers are stable");
        }
        let reply = client.call("GET", "/stats", None).unwrap();
        let stats = Json::parse(reply.body.trim()).unwrap();
        let conns = stats.get("server").unwrap().get("connections").unwrap();
        assert!(
            conns.get("keepalive_reuses").unwrap().as_u64().unwrap() >= 4,
            "{}",
            reply.body
        );

        let (status, _) = http_call(&addr_s, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().expect("server thread joins cleanly");
    }
}
