//! # unified-tradeoff
//!
//! A full reproduction of **"A Unified Architectural Tradeoff
//! Methodology"** (Chung-Ho Chen and Arun K. Somani, ISCA 1994) as a Rust
//! workspace: the analytic tradeoff model *and* the trace-driven
//! simulation substrate the paper's measured quantities come from.
//!
//! The paper prices every memory-hierarchy feature in a single currency —
//! cache hit ratio — via the equivalence of mean memory delay. This crate
//! re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tradeoff`] | the paper's model: Eq. 2 execution time, the `ΔHR = (r − 1)(1 − HR)` equivalence, line-size selection, crossovers, ranking |
//! | [`simtrace`] | synthetic SPEC92-proxy workload generators |
//! | [`simcache`] | set-associative cache simulator (LRU/FIFO/random/PLRU, write policies) |
//! | [`simmem`] | bus/memory timing, pipelined fills, read-bypassing write buffers |
//! | [`simcpu`] | in-order CPU timing simulator measuring stalling factors `φ` |
//! | [`smithval`] | Smith (1987) line-size methodology and the Figure 6 validation |
//! | [`report`] | ASCII charts / tables / CSV for the experiment binaries |
//!
//! # Quick start
//!
//! How much cache hit ratio is a 64-bit bus worth on a 32-bit design?
//!
//! ```
//! use unified_tradeoff::prelude::*;
//!
//! let machine = Machine::new(4.0, 32.0, 8.0)?; // D=4B, L=32B, β_m=8
//! let base = SystemConfig::full_stalling(0.5);
//! let hr = HitRatio::new(0.95)?;
//!
//! let dhr = tradeoff::equiv::traded_hit_ratio(
//!     &machine, &base, &base.with_bus_factor(2.0), hr)?;
//! println!("doubling the bus is worth {:.2} % hit ratio", 100.0 * dhr);
//! assert!(dhr > 0.0);
//! # Ok::<(), tradeoff::TradeoffError>(())
//! ```
//!
//! And the measured side — run a workload through the cycle-accurate
//! simulator and extract the paper's `{HR, α, φ}`:
//!
//! ```
//! use unified_tradeoff::prelude::*;
//!
//! let cfg = CpuConfig::baseline(
//!     CacheConfig::new(8 * 1024, 32, 2)?,
//!     MemoryTiming::new(BusWidth::new(4).map_err(|e| e.to_string())?, 8),
//! ).with_stall(StallFeature::BusNotLocked3);
//! let result = Cpu::new(cfg).run(
//!     simtrace::spec92::spec92_trace(Spec92Program::Ear, 7).take(20_000));
//! println!("HR {:.3}, α {:.3}, φ {:.2}", result.dcache.hit_ratio(),
//!          result.alpha(), result.phi());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! paper-versus-measured record. Each figure/table is a registered
//! experiment in the `bench` crate, run by the generic `exp` binary
//! (`cargo run -p bench --release --bin exp -- fig3`, etc.) or by
//! `tradeoff-cli experiments run`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod server;

pub use report;
pub use simcache;
pub use simcpu;
pub use simmem;
pub use simtrace;
pub use smithval;
pub use tradeoff;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use report::{Chart, Table};
    pub use simcache::{Cache, CacheConfig, Replacement, StackDistSweep, WriteMiss, WritePolicy};
    pub use simcpu::{
        Cpu, CpuConfig, L2Config, MissTimeline, Prefetch, SimResult, StallFeature, TimelineCpu,
        WriteBufferConfig,
    };
    pub use simmem::{BusWidth, FillSchedule, MemoryTiming, WriteBuffer};
    pub use simtrace::spec92::{spec92_trace, Spec92Program};
    pub use simtrace::{Addr, Instr, MemOp, MemRef};
    pub use smithval::{DesignTargetModel, MissRatioModel, TableModel};
    pub use tradeoff::{
        execution_time, mean_access_time, AppSignature, FlushRatio, HitRatio, Machine, StallSpec,
        SystemConfig, TradeoffError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_both_sides() {
        // Analytic side.
        let m = Machine::new(4.0, 32.0, 8.0).unwrap();
        let sys = SystemConfig::full_stalling(0.5);
        assert!(mean_access_time(&m, &sys, HitRatio::new(0.95).unwrap()).unwrap() > 1.0);
        // Simulated side.
        let cfg = CpuConfig::baseline(
            CacheConfig::new(4096, 32, 2).unwrap(),
            MemoryTiming::new(BusWidth::new(4).unwrap(), 4),
        );
        let r = Cpu::new(cfg).run(spec92_trace(Spec92Program::Doduc, 1).take(2_000));
        assert_eq!(r.instructions, 2_000);
    }
}
