//! The `tradeoff-server` binary: a long-running HTTP/JSON query
//! service over the typed `tradeoff::api` dispatch, keeping the trace
//! store warm across requests.
//!
//! ```text
//! tradeoff-server [--addr 127.0.0.1:7878] [--threads N] [--addr-file PATH]
//!                 [--queue N] [--max-inflight N] [--request-timeout SECS]
//!                 [--idle-timeout SECS] [--max-requests N]
//!                 [--shutdown-token TOKEN]
//! ```
//!
//! Endpoints: `POST /query`, `GET /experiments`, `GET /stats`,
//! `POST /shutdown` (token-guarded when `--shutdown-token` is set,
//! loopback-only otherwise). Overload policy: beyond `--max-inflight`
//! connections the acceptor sheds with `503`; over the `--queue`
//! watermark only cheap requests are admitted. `--request-timeout`
//! bounds each request (header-overridable downward), `--idle-timeout`
//! reaps idle and slow-loris connections, `--max-requests` caps one
//! keep-alive connection. Exit codes: `0` after a graceful shutdown,
//! `1` on bind or I/O failure, `2` on bad usage.

use std::time::Duration;
use unified_tradeoff::server::{serve, ServerConfig};

fn usage() -> String {
    "usage: tradeoff-server [--addr HOST:PORT] [--threads N] [--addr-file PATH]\n\
     \u{20}                      [--queue N] [--max-inflight N]\n\
     \u{20}                      [--request-timeout SECS] [--idle-timeout SECS]\n\
     \u{20}                      [--max-requests N] [--shutdown-token TOKEN]\n\
     \n\
     Serves POST /query, GET /experiments, GET /stats and POST /shutdown\n\
     over the typed tradeoff::api dispatch. Bind port 0 for an ephemeral\n\
     port; --addr-file records the actual bound address after startup.\n\
     Overload policy: --max-inflight caps concurrent connections (beyond\n\
     it the acceptor sheds 503 + Retry-After); over the --queue dispatch\n\
     watermark expensive queries (simulate/grid) are shed while cheap\n\
     ones are admitted. --request-timeout SECS bounds each request from\n\
     its first byte (0 disables; clients may lower it per request via\n\
     X-Request-Timeout-Ms), --idle-timeout reaps idle keep-alive and\n\
     slow-loris peers, --max-requests caps requests per connection.\n\
     With --shutdown-token, POST /shutdown must carry {\"token\": …};\n\
     without it, only loopback peers may stop the server.\n\
     Exit codes: 0 graceful shutdown, 1 I/O failure, 2 bad usage"
        .to_string()
}

fn parse_secs(key: &str, value: &str) -> Result<Duration, String> {
    let secs: f64 = value
        .parse()
        .map_err(|_| format!("{key}: not a number of seconds: {value:?}"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("{key}: must be a finite non-negative number"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn parse(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        if key == "--help" || key == "-h" || key == "help" {
            return Err(usage());
        }
        let value = it.next().ok_or(format!("{key} needs a value"))?;
        match key.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--threads" => {
                cfg.threads = value
                    .parse()
                    .map_err(|_| format!("--threads: not an integer: {value:?}"))?;
                if cfg.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--queue" => {
                cfg.queue = value
                    .parse()
                    .map_err(|_| format!("--queue: not an integer: {value:?}"))?;
            }
            "--max-inflight" => {
                cfg.max_inflight = value
                    .parse()
                    .map_err(|_| format!("--max-inflight: not an integer: {value:?}"))?;
                if cfg.max_inflight == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
            }
            "--request-timeout" => cfg.request_timeout = parse_secs(key, value)?,
            "--idle-timeout" => {
                cfg.idle_timeout = parse_secs(key, value)?;
                if cfg.idle_timeout.is_zero() {
                    return Err("--idle-timeout must be positive".to_string());
                }
            }
            "--max-requests" => {
                cfg.max_requests_per_conn = value
                    .parse()
                    .map_err(|_| format!("--max-requests: not an integer: {value:?}"))?;
                if cfg.max_requests_per_conn == 0 {
                    return Err("--max-requests must be at least 1".to_string());
                }
            }
            "--addr-file" => cfg.addr_file = Some(std::path::PathBuf::from(value)),
            "--shutdown-token" => cfg.shutdown_token = Some(value.clone()),
            other => return Err(format!("unknown option {other:?}\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(e) = serve(&cfg) {
        eprintln!("tradeoff-server: {e}");
        std::process::exit(1);
    }
}
