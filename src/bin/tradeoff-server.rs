//! The `tradeoff-server` binary: a long-running HTTP/JSON query
//! service over the typed `tradeoff::api` dispatch, keeping the trace
//! store warm across requests.
//!
//! ```text
//! tradeoff-server [--addr 127.0.0.1:7878] [--threads N] [--addr-file PATH]
//!                 [--shutdown-token TOKEN]
//! ```
//!
//! Endpoints: `POST /query`, `GET /experiments`, `GET /stats`,
//! `POST /shutdown` (token-guarded when `--shutdown-token` is set,
//! loopback-only otherwise). Exit codes: `0` after a graceful shutdown,
//! `1` on bind or I/O failure, `2` on bad usage.

use unified_tradeoff::server::{serve, ServerConfig};

fn usage() -> String {
    "usage: tradeoff-server [--addr HOST:PORT] [--threads N] [--addr-file PATH]\n\
     \u{20}                      [--shutdown-token TOKEN]\n\
     \n\
     Serves POST /query, GET /experiments, GET /stats and POST /shutdown\n\
     over the typed tradeoff::api dispatch. Bind port 0 for an ephemeral\n\
     port; --addr-file records the actual bound address after startup.\n\
     With --shutdown-token, POST /shutdown must carry {\"token\": …};\n\
     without it, only loopback peers may stop the server.\n\
     Exit codes: 0 graceful shutdown, 1 I/O failure, 2 bad usage"
        .to_string()
}

fn parse(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        if key == "--help" || key == "-h" || key == "help" {
            return Err(usage());
        }
        let value = it.next().ok_or(format!("{key} needs a value"))?;
        match key.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--threads" => {
                cfg.threads = value
                    .parse()
                    .map_err(|_| format!("--threads: not an integer: {value:?}"))?;
                if cfg.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--addr-file" => cfg.addr_file = Some(std::path::PathBuf::from(value)),
            "--shutdown-token" => cfg.shutdown_token = Some(value.clone()),
            other => return Err(format!("unknown option {other:?}\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(e) = serve(&cfg) {
        eprintln!("tradeoff-server: {e}");
        std::process::exit(1);
    }
}
