//! The `tradeoff` command-line tool: price features, locate crossovers,
//! pick line sizes, simulate proxies and search memory-system designs.
//!
//! See `tradeoff-cli help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match unified_tradeoff::cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
