//! The `tradeoff` command-line tool: price features, locate crossovers,
//! pick line sizes, simulate proxies and search memory-system designs.
//!
//! See `tradeoff-cli help` for usage. Exit codes: `0` success, `1` one
//! or more experiments failed (a `--keep-going` run still prints the
//! partial suite document first), `2` bad usage, `3` manifest drift or
//! artifact write failure.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match unified_tradeoff::cli::run_cli(&args) {
        Ok(report) => println!("{report}"),
        Err(err) => {
            if let Some(partial) = err.partial_output() {
                println!("{partial}");
            }
            eprintln!("{}", err.message());
            std::process::exit(err.exit_code());
        }
    }
}
